#include "fcm/fcm_topk.h"

#include <gtest/gtest.h>

#include "flow/synthetic.h"
#include "metrics/metrics.h"

namespace fcm::core {
namespace {

FcmTopK::Config small_config(std::uint64_t seed = 0x123) {
  FcmTopK::Config config;
  config.fcm = FcmConfig::for_memory(120'000, 2, 16, {8, 16, 32}, seed);
  config.topk_entries = 256;
  return config;
}

TEST(FcmTopK, HeavyFlowPinnedExactly) {
  FcmTopK topk(small_config());
  for (int i = 0; i < 5000; ++i) topk.update(flow::FlowKey{1});
  EXPECT_EQ(topk.query(flow::FlowKey{1}), 5000u);
}

TEST(FcmTopK, ForMemorySplitsBudget) {
  const FcmTopK topk = FcmTopK::for_memory(500'000, 2, 16, 4096);
  EXPECT_LE(topk.memory_bytes(), 500'000u);
  EXPECT_GE(topk.memory_bytes(), 450'000u);
  EXPECT_EQ(topk.filter().entry_count(), 4096u);
  EXPECT_THROW(FcmTopK::for_memory(1000, 2, 16, 4096), std::invalid_argument);
}

class FcmTopKPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FcmTopKPropertyTest, NeverUnderestimates) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 150000;
  trace_config.flow_count = 15000;
  trace_config.seed = GetParam();
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  const flow::GroundTruth truth(trace);

  FcmTopK topk(small_config(GetParam()));
  for (const flow::Packet& p : trace.packets()) topk.update(p.key);

  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(topk.query(key), size) << "flow " << key.value;
  }
}

TEST_P(FcmTopKPropertyTest, TotalMassPreservedAcrossFilterAndSketch) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 100000;
  trace_config.flow_count = 10000;
  trace_config.seed = GetParam();
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();

  FcmTopK topk(small_config(GetParam() + 7));
  for (const flow::Packet& p : trace.packets()) topk.update(p.key);

  std::uint64_t filter_mass = 0;
  for (const auto& entry : topk.filter().entries()) filter_mass += entry.count;
  // Every packet is either in the filter or in (every tree of) the sketch.
  EXPECT_EQ(filter_mass + topk.sketch().tree(0).total_count(), trace.size());
  EXPECT_EQ(filter_mass + topk.sketch().tree(1).total_count(), trace.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FcmTopKPropertyTest, ::testing::Values(1, 2, 3));

TEST(FcmTopK, HeavyHittersCombineFilterAndSketch) {
  FcmTopK topk(small_config());
  topk.set_heavy_hitter_threshold(100);
  for (int i = 0; i < 500; ++i) topk.update(flow::FlowKey{11});
  for (int i = 0; i < 20; ++i) topk.update(flow::FlowKey{22});
  const auto heavy = topk.heavy_hitters(100);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0], flow::FlowKey{11});
}

TEST(FcmTopK, CardinalityCountsFilterResidents) {
  FcmTopK topk(small_config());
  for (std::uint32_t k = 1; k <= 100; ++k) {
    for (int i = 0; i < 20; ++i) topk.update(flow::FlowKey{k});
  }
  EXPECT_NEAR(topk.estimate_cardinality(), 100.0, 10.0);
}

TEST(FcmTopK, TopkFlowsExposesResidents) {
  FcmTopK topk(small_config());
  for (int i = 0; i < 50; ++i) topk.update(flow::FlowKey{5});
  const auto flows = topk.topk_flows();
  ASSERT_TRUE(flows.contains(flow::FlowKey{5}));
  EXPECT_EQ(flows.at(flow::FlowKey{5}), 50u);
}

TEST(FcmTopK, ClearResets) {
  FcmTopK topk(small_config());
  for (int i = 0; i < 100; ++i) topk.update(flow::FlowKey{5});
  topk.clear();
  EXPECT_EQ(topk.query(flow::FlowKey{5}), 0u);
  EXPECT_TRUE(topk.topk_flows().empty());
}

TEST(FcmTopK, FilterReducesSketchLoad) {
  // With the filter absorbing heavy flows, the sketch sees less mass than
  // the plain FCM would — the mechanism behind the paper's §6 claim.
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 200000;
  trace_config.flow_count = 10000;
  trace_config.zipf_alpha = 1.3;
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();

  FcmTopK topk(small_config());
  FcmSketch plain(small_config().fcm);
  for (const flow::Packet& p : trace.packets()) {
    topk.update(p.key);
    plain.update(p.key);
  }
  EXPECT_LT(topk.sketch().tree(0).total_count(), plain.tree(0).total_count() / 2);
}

}  // namespace
}  // namespace fcm::core
