#include "common/hash.h"

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

namespace fcm::common {
namespace {

TEST(BobHash, DeterministicForSameInput) {
  const std::uint32_t value = 0xdeadbeef;
  EXPECT_EQ(bob_hash_value(value, 1), bob_hash_value(value, 1));
}

TEST(BobHash, SeedChangesOutput) {
  const std::uint32_t value = 12345;
  EXPECT_NE(bob_hash_value(value, 1), bob_hash_value(value, 2));
}

TEST(BobHash, InputChangesOutput) {
  EXPECT_NE(bob_hash_value(std::uint32_t{1}, 7), bob_hash_value(std::uint32_t{2}, 7));
}

TEST(BobHash, EmptyInputIsValid) {
  EXPECT_EQ(bob_hash({}, 3), bob_hash({}, 3));
  EXPECT_NE(bob_hash({}, 3), bob_hash({}, 4));
}

TEST(BobHash, HandlesAllTailLengths) {
  // Exercise every remainder branch (1..13 bytes spans two blocks).
  std::array<std::byte, 16> data{};
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte{static_cast<unsigned char>(i)};
  std::set<std::uint32_t> outputs;
  for (std::size_t length = 1; length <= data.size(); ++length) {
    outputs.insert(bob_hash(std::span(data).first(length), 0));
  }
  EXPECT_EQ(outputs.size(), data.size()) << "lengths must hash distinctly";
}

TEST(BobHash, UniformBucketSpread) {
  // 64K sequential keys into 256 buckets: each bucket should be near 256.
  constexpr std::size_t kBuckets = 256;
  std::vector<std::size_t> histogram(kBuckets, 0);
  for (std::uint32_t i = 0; i < 65536; ++i) {
    ++histogram[bob_hash_value(i, 42) % kBuckets];
  }
  for (const std::size_t count : histogram) {
    EXPECT_GT(count, 150u);
    EXPECT_LT(count, 400u);
  }
}

TEST(Mix64, BijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64, AvalancheFlipsManyBits) {
  int total_flips = 0;
  for (std::uint64_t i = 1; i < 64; ++i) {
    total_flips += std::popcount(mix64(0x1234) ^ mix64(0x1234 ^ (1ull << i)));
  }
  EXPECT_GT(total_flips / 63, 20) << "average flipped bits should be near 32";
}

TEST(SeededHash, IndexStaysInRange) {
  const SeededHash hash(99);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_LT(hash.index(i, 77), 77u);
  }
}

TEST(MakeHash, DistinctFunctionsFromOneMaster) {
  std::set<std::uint32_t> seeds;
  for (std::uint32_t i = 0; i < 64; ++i) {
    seeds.insert(make_hash(0xabc, i).seed());
  }
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(MakeHash, PairwiseIndependenceSmoke) {
  // Two functions from one family should disagree on collisions: keys that
  // collide under h0 in a small table should spread under h1.
  const SeededHash h0 = make_hash(0x5eed, 0);
  const SeededHash h1 = make_hash(0x5eed, 1);
  std::vector<std::uint32_t> colliders;
  for (std::uint32_t i = 0; i < 400000 && colliders.size() < 200; ++i) {
    if (h0.index(i, 1024) == 0) colliders.push_back(i);
  }
  ASSERT_GE(colliders.size(), 100u);
  std::set<std::size_t> spread;
  for (const std::uint32_t key : colliders) spread.insert(h1.index(key, 1024));
  EXPECT_GT(spread.size(), colliders.size() / 2);
}

}  // namespace
}  // namespace fcm::common
