#include "framework/epoch_manager.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "flow/synthetic.h"
#include "metrics/metrics.h"

namespace fcm::framework {
namespace {

EpochManager::Options small_options() {
  EpochManager::Options options;
  options.framework.fcm = core::FcmConfig::for_memory(120'000, 2, 8, {8, 16, 32});
  options.framework.heavy_hitter_threshold = 200;
  options.framework.em.max_iterations = 3;
  options.retained_epochs = 3;
  return options;
}

TEST(EpochManager, RejectsZeroRetention) {
  auto options = small_options();
  options.retained_epochs = 0;
  EXPECT_THROW(EpochManager{options}, std::invalid_argument);
}

TEST(EpochManager, RotationResetsDataPlane) {
  EpochManager manager(small_options());
  for (int i = 0; i < 500; ++i) manager.process(flow::Packet{flow::FlowKey{1}, 64, 0});
  EXPECT_EQ(manager.flow_size(flow::FlowKey{1}), 500u);
  const auto summary = manager.rotate();
  EXPECT_EQ(summary.index, 0u);
  EXPECT_EQ(summary.packets, 500u);
  EXPECT_EQ(manager.flow_size(flow::FlowKey{1}), 0u);
  EXPECT_EQ(manager.epochs_completed(), 1u);
}

TEST(EpochManager, SummaryCarriesHeavyHittersAndReport) {
  EpochManager manager(small_options());
  for (int i = 0; i < 1000; ++i) manager.process(flow::Packet{flow::FlowKey{7}, 64, 0});
  for (int i = 0; i < 50; ++i) manager.process(flow::Packet{flow::FlowKey{8}, 64, 0});
  const auto summary = manager.rotate();
  ASSERT_EQ(summary.heavy_hitters.size(), 1u);
  EXPECT_EQ(summary.heavy_hitters[0], flow::FlowKey{7});
  EXPECT_NEAR(summary.cardinality, 2.0, 1.0);
  EXPECT_GT(summary.report.estimated_flows, 0.0);
}

TEST(EpochManager, HistoryBounded) {
  EpochManager manager(small_options());
  for (int epoch = 0; epoch < 6; ++epoch) {
    manager.process(flow::Packet{flow::FlowKey{static_cast<std::uint32_t>(epoch + 1)}, 64, 0});
    manager.rotate();
  }
  EXPECT_EQ(manager.history().size(), 3u);
  // Oldest retained snapshot is epoch 3 (flows 4..6 in history).
  EXPECT_EQ(manager.history().front().flow_size(flow::FlowKey{4}), 1u);
  EXPECT_EQ(manager.history().back().flow_size(flow::FlowKey{6}), 1u);
}

TEST(EpochManager, DetectsHeavyChangeBetweenEpochs) {
  auto options = small_options();
  options.analyze_on_rotate = false;
  EpochManager manager(options);

  // Epoch 0: flow 5 heavy.
  for (int i = 0; i < 2000; ++i) manager.process(flow::Packet{flow::FlowKey{5}, 64, 0});
  const auto first = manager.rotate();
  EXPECT_TRUE(first.heavy_changes.empty()) << "no previous epoch to compare";

  // Epoch 1: flow 5 disappears, flow 6 appears heavy.
  for (int i = 0; i < 2000; ++i) manager.process(flow::Packet{flow::FlowKey{6}, 64, 0});
  const auto second = manager.rotate();
  const auto has = [&](std::uint32_t k) {
    return std::find(second.heavy_changes.begin(), second.heavy_changes.end(),
                     flow::FlowKey{k}) != second.heavy_changes.end();
  };
  EXPECT_TRUE(has(5));
  EXPECT_TRUE(has(6));
}

TEST(EpochManager, RealisticWindowsEndToEnd) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 80'000;
  config.flow_count = 8'000;
  const flow::WindowPair pair = flow::make_window_pair(config, 0.5);

  auto options = small_options();
  options.framework.heavy_hitter_threshold =
      config.packet_count / 2000;
  options.analyze_on_rotate = false;
  EpochManager manager(options);

  manager.process(pair.window_a.packets());
  manager.rotate();
  manager.process(pair.window_b.packets());
  const auto summary = manager.rotate();

  const auto actual = flow::true_heavy_changes(flow::GroundTruth(pair.window_a),
                                               flow::GroundTruth(pair.window_b),
                                               options.framework.heavy_hitter_threshold);
  if (actual.empty()) GTEST_SKIP();
  const auto scores = metrics::classification_scores(summary.heavy_changes, actual);
  EXPECT_GT(scores.f1, 0.8);
}

}  // namespace
}  // namespace fcm::framework
