// Filtered Space-Saving baseline suite: hand-computed bit-exact small cases
// (the admission / displacement / filter-bump state machine step by step),
// the never-underestimate guarantee under skew, and the structural
// invariants. The cross-estimator accuracy row lives in bench_fig10_11_skew;
// the interface-contract row in test_interface_invariants.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "flow/flow_key.h"
#include "sketch/fss_sketch.h"

namespace fcm {
namespace {

using sketch::FssSketch;

FssSketch::Config tiny_config(std::size_t cells = 8, std::size_t entries = 2) {
  FssSketch::Config config;
  config.filter_cells = cells;
  config.monitored_entries = entries;
  return config;
}

TEST(FssSketch, WarmupAdmitsUnconditionally) {
  FssSketch fss(tiny_config());
  const flow::FlowKey a{1};
  const flow::FlowKey b{2};
  fss.update(a);
  fss.update(a);
  fss.update(b);
  EXPECT_TRUE(fss.is_monitored(a));
  EXPECT_TRUE(fss.is_monitored(b));
  EXPECT_EQ(fss.query(a), 2u);  // exact while monitored from first packet
  EXPECT_EQ(fss.query(b), 1u);
  fss.check_invariants();
}

TEST(FssSketch, FilterBumpsInsteadOfChurningTheList) {
  // One cell, so every unmonitored flow shares one bound. List of 2.
  FssSketch fss(tiny_config(/*cells=*/1, /*entries=*/2));
  const flow::FlowKey a{1};
  const flow::FlowKey b{2};
  const flow::FlowKey c{3};
  // a=3, b=3: the list is full with min count 3.
  for (int i = 0; i < 3; ++i) fss.update(a);
  for (int i = 0; i < 3; ++i) fss.update(b);
  // c arrives twice: bound+1 = 1 then 2, both < 3 -> filtered out.
  fss.update(c);
  fss.update(c);
  EXPECT_FALSE(fss.is_monitored(c));
  EXPECT_EQ(fss.cell_bound(c), 2u);  // two bumps recorded
  EXPECT_EQ(fss.query(c), 2u);       // >= its true count of 2
  EXPECT_EQ(fss.query(a), 3u);       // untouched
  fss.check_invariants();
}

TEST(FssSketch, DisplacementSeedsCountFromTheBoundAndWritesBackTheVictim) {
  FssSketch fss(tiny_config(/*cells=*/1, /*entries=*/2));
  const flow::FlowKey a{1};
  const flow::FlowKey b{2};
  const flow::FlowKey c{3};
  for (int i = 0; i < 5; ++i) fss.update(a);  // a: count 5
  fss.update(b);                              // b: count 1 (the minimum)
  // c arrives: bound+1 = 1 >= min count 1, so it displaces b immediately;
  // b's count (1) is written back into the shared cell.
  fss.update(c);
  EXPECT_TRUE(fss.is_monitored(c));
  EXPECT_FALSE(fss.is_monitored(b));
  EXPECT_EQ(fss.query(c), 1u);       // seeded at bound + 1 = 1, error 0
  EXPECT_EQ(fss.cell_bound(b), 1u);  // the victim's count, folded back
  EXPECT_GE(fss.query(b), 1u);       // still no underestimate for b
  // b returns: bound+1 = 2 >= min count 1 (now c) -> displaces c, seeded at
  // count = 2 with admission error 1.
  fss.update(b);
  EXPECT_TRUE(fss.is_monitored(b));
  EXPECT_FALSE(fss.is_monitored(c));
  const auto monitored = fss.monitored();
  ASSERT_EQ(monitored.size(), 2u);
  for (const auto& entry : monitored) {
    if (entry.key == b) {
      EXPECT_EQ(entry.count, 2u);
      EXPECT_EQ(entry.error, 1u);
    }
  }
  EXPECT_GE(fss.query(b), 2u);  // true count is 2; bound holds
  EXPECT_GE(fss.query(c), 1u);  // c's packet survives in the cell bound
  fss.check_invariants();
}

TEST(FssSketch, NeverUnderestimatesUnderZipfChurn) {
  FssSketch fss(FssSketch::Config{.filter_cells = 512,
                                  .monitored_entries = 64,
                                  .seed = 0xf55});
  common::Xoshiro256 rng(0xf55);
  common::ZipfSampler zipf(2'000, 1.1);
  std::unordered_map<flow::FlowKey, std::uint64_t> truth;
  for (int i = 0; i < 100'000; ++i) {
    const flow::FlowKey key{static_cast<std::uint32_t>(zipf.sample(rng))};
    fss.update(key);
    ++truth[key];
    if (i % 9973 == 0) fss.check_invariants();
  }
  for (const auto& [key, count] : truth) {
    ASSERT_GE(fss.query(key), count) << "underestimated flow " << key.value;
  }
  fss.check_invariants();
}

TEST(FssSketch, HeavyHittersUseGuaranteedCounts) {
  FssSketch fss(FssSketch::Config{.filter_cells = 1024,
                                  .monitored_entries = 128,
                                  .seed = 0xf55});
  common::Xoshiro256 rng(0x5eed);
  common::ZipfSampler zipf(1'000, 1.3);
  std::unordered_map<flow::FlowKey, std::uint64_t> truth;
  for (int i = 0; i < 50'000; ++i) {
    const flow::FlowKey key{static_cast<std::uint32_t>(zipf.sample(rng))};
    fss.update(key);
    ++truth[key];
  }
  constexpr std::uint64_t kThreshold = 500;
  for (const flow::FlowKey key : fss.heavy_hitters(kThreshold)) {
    // count - error is a LOWER bound, so every report is truly heavy.
    EXPECT_GE(truth[key], kThreshold) << "false positive " << key.value;
  }
}

TEST(FssSketch, DeterministicAcrossRuns) {
  const auto run = [] {
    FssSketch fss(tiny_config(/*cells=*/64, /*entries=*/16));
    common::Xoshiro256 rng(42);
    for (int i = 0; i < 10'000; ++i) {
      fss.update(flow::FlowKey{static_cast<std::uint32_t>(1 + rng.next() % 300)});
    }
    std::vector<std::uint64_t> estimates;
    for (std::uint32_t id = 1; id <= 300; ++id) {
      estimates.push_back(fss.query(flow::FlowKey{id}));
    }
    return estimates;
  };
  EXPECT_EQ(run(), run());
}

TEST(FssSketch, ClearRestoresEmptyState) {
  FssSketch fss(tiny_config(/*cells=*/64, /*entries=*/16));
  for (std::uint32_t id = 1; id <= 100; ++id) {
    fss.update(flow::FlowKey{id});
  }
  fss.clear();
  EXPECT_EQ(fss.monitored().size(), 0u);
  for (std::uint32_t id = 1; id <= 100; ++id) {
    EXPECT_EQ(fss.query(flow::FlowKey{id}), 0u);
  }
  fss.check_invariants();
}

TEST(FssSketch, ForMemoryRespectsTheBudget) {
  for (const std::size_t budget : {1'000u, 50'000u, 1'000'000u}) {
    const FssSketch fss = FssSketch::for_memory(budget);
    EXPECT_LE(fss.memory_bytes(), budget + 16u) << budget;
    EXPECT_GE(fss.memory_bytes(), budget / 2) << budget;
  }
  EXPECT_EQ(FssSketch::for_memory(100'000).name(), "FSS");
}

}  // namespace
}  // namespace fcm
