// Differential battery for the heavy-flow cache (DESIGN.md §12): a cache-on
// pipeline against an identically-seeded cache-off pipeline over the same
// trace. FCM counters are order-independent sums, so folding the cache into
// the sketch must reproduce the cache-off state BIT FOR BIT (compared via
// WireCodec serialization, the strictest equality the repo has); the live
// combined view must satisfy the pointwise sandwich
//
//     truth(f)  <=  estimate_cache_on(f)  <=  estimate_cache_off(f)
//
// (left side: the never-underestimate guarantee survives the cache; right
// side: the cache can only remove error, not add it). The sharded half runs
// the same differential through ShardedFcmFramework at N in {1, 4} shards —
// CI repeats it under TSan, so the driver-side cache's epoch drain is also
// raced against the coordinator.
//
// Scope of the bit-exact claim: COUNTER state. The on-path heavy-hitter
// ledger records flows at the moment their own add crosses T, and the cache
// reschedules those adds (demotions + epoch folds), so the ledger is
// trajectory-dependent by construction. The bit-exact comparisons therefore
// run with on-path detection disabled (threshold 0 — the serialized bytes
// then cover every counter in every tree), while threshold-T runs pin the
// guarantees that survive rescheduling: identical per-flow estimates, no
// false-negative heavy hitters vs ground truth, and every cache-on false
// positive being a flow the sketch-only pipeline overestimates past T too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "agg/wire.h"
#include "common/random.h"
#include "datapath/cached_framework.h"
#include "flow/flow_key.h"
#include "flow/trace.h"
#include "framework/fcm_framework.h"
#include "property_harness.h"
#include "runtime/sharded_framework.h"

namespace fcm {
namespace {

using agg::WireCodec;
using datapath::CachedFramework;
using framework::FcmFramework;
using proptest::small_fcm_config;

constexpr std::uint64_t kSeed = 0xd1ff;
constexpr std::uint64_t kThreshold = 64;

FcmFramework::Options plain_options(std::uint64_t threshold = kThreshold,
                                    std::uint64_t seed = kSeed) {
  FcmFramework::Options options;
  options.fcm = small_fcm_config(seed);
  options.heavy_hitter_threshold = threshold;
  options.metrics = nullptr;
  return options;
}

CachedFramework::Options cached_options(std::uint64_t threshold = kThreshold,
                                        std::uint64_t seed = kSeed) {
  CachedFramework::Options options;
  options.framework = plain_options(threshold, seed);
  options.cache.entries = 256;  // small enough to force eviction churn
  options.cache.ways = 4;
  options.metrics = nullptr;
  return options;
}

// Zipf-skewed key stream: a few very hot flows (cache hits), a churning tail
// (evictions + demotions).
std::vector<flow::FlowKey> zipf_keys(std::uint64_t seed, std::size_t length,
                                     std::size_t universe, double alpha = 1.2) {
  common::Xoshiro256 rng(seed);
  common::ZipfSampler zipf(universe, alpha);
  std::vector<flow::FlowKey> keys;
  keys.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    keys.push_back(flow::FlowKey{static_cast<std::uint32_t>(zipf.sample(rng))});
  }
  return keys;
}

std::unordered_map<flow::FlowKey, std::uint64_t> exact_counts(
    const std::vector<flow::FlowKey>& keys) {
  std::unordered_map<flow::FlowKey, std::uint64_t> truth;
  for (const flow::FlowKey key : keys) ++truth[key];
  return truth;
}

// --- serial: bit-exactness --------------------------------------------------

TEST(DatapathDifferential, SnapshotIsBitExactWithCacheOff) {
  const std::vector<flow::FlowKey> keys = zipf_keys(kSeed, 60'000, 2'000);
  // Threshold 0: the serialized bytes cover every counter of every tree with
  // no trajectory-dependent HH ledger riding along (see file header).
  CachedFramework cached(cached_options(/*threshold=*/0));
  FcmFramework plain(plain_options(/*threshold=*/0));
  for (const flow::FlowKey key : keys) {
    cached.process(key);
    plain.process(key);
  }
  EXPECT_GT(cached.cache().hits(), 0u);
  EXPECT_GT(cached.cache().evictions(), 0u);
  const FcmFramework folded = cached.snapshot();
  // The strongest equality available: identical serialized bytes.
  EXPECT_EQ(WireCodec::serialize(folded), WireCodec::serialize(plain));
  cached.check_invariants();
}

TEST(DatapathDifferential, SnapshotEstimatesMatchCacheOffAtThreshold) {
  // With on-path detection enabled the counter state is still identical —
  // every per-flow estimate of the folded snapshot equals the cache-off run.
  const std::vector<flow::FlowKey> keys = zipf_keys(kSeed, 60'000, 2'000);
  CachedFramework cached(cached_options());
  FcmFramework plain(plain_options());
  for (const flow::FlowKey key : keys) {
    cached.process(key);
    plain.process(key);
  }
  const FcmFramework folded = cached.snapshot();
  for (std::uint32_t id = 1; id <= 2'000; ++id) {
    const flow::FlowKey key{id};
    ASSERT_EQ(folded.flow_size(key), plain.flow_size(key)) << "flow " << id;
  }
}

TEST(DatapathDifferential, SnapshotIsBitExactInByteMode) {
  FcmFramework::Options plain_opts = plain_options(/*threshold=*/0);
  plain_opts.count_mode = FcmFramework::CountMode::kBytes;
  CachedFramework::Options cached_opts = cached_options(/*threshold=*/0);
  cached_opts.framework = plain_opts;

  CachedFramework cached(cached_opts);
  FcmFramework plain(plain_opts);
  common::Xoshiro256 rng(kSeed);
  common::ZipfSampler zipf(1'000, 1.2);
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 40'000; ++i) {
    flow::Packet packet;
    packet.key = flow::FlowKey{static_cast<std::uint32_t>(zipf.sample(rng))};
    packet.bytes = static_cast<std::uint32_t>(64 + rng.next() % 1400);
    cached.process(packet);
    plain.process(packet);
    total_bytes += packet.bytes;
  }
  EXPECT_EQ(WireCodec::serialize(cached.snapshot()), WireCodec::serialize(plain));
  // Totals conserved exactly: every offered byte is resident or demoted.
  EXPECT_GT(cached.cache().offered_units(), 0u);
  EXPECT_EQ(cached.cache().resident_units() + cached.cache().evicted_units(),
            cached.cache().offered_units());
  EXPECT_GT(total_bytes, 0u);
}

TEST(DatapathDifferential, BatchAndSpanPathsMatchScalarPath) {
  const std::vector<flow::FlowKey> keys = zipf_keys(kSeed, 20'000, 1'000);
  CachedFramework scalar(cached_options());
  CachedFramework batched(cached_options());
  for (const flow::FlowKey key : keys) scalar.process(key);
  batched.process_batch(keys);
  EXPECT_EQ(WireCodec::serialize(scalar.snapshot()),
            WireCodec::serialize(batched.snapshot()));
}

// --- serial: the pointwise sandwich ----------------------------------------

TEST(DatapathDifferential, LiveViewNeverUnderestimatesAndNeverExceedsCacheOff) {
  const std::vector<flow::FlowKey> keys = zipf_keys(kSeed, 60'000, 2'000);
  CachedFramework cached(cached_options());
  FcmFramework plain(plain_options());
  for (const flow::FlowKey key : keys) {
    cached.process(key);
    plain.process(key);
  }
  for (const auto& [key, truth] : exact_counts(keys)) {
    const std::uint64_t on = cached.flow_size(key);
    const std::uint64_t off = plain.flow_size(key);
    ASSERT_GE(on, truth) << "cache-on underestimates flow " << key.value;
    ASSERT_LE(on, off) << "cache-on worse than cache-off for flow "
                       << key.value;
  }
}

TEST(DatapathDifferential, HeavyHitterSetIsNestedBetweenTruthAndCacheOff) {
  const std::vector<flow::FlowKey> keys = zipf_keys(kSeed, 60'000, 2'000);
  CachedFramework cached(cached_options());
  FcmFramework plain(plain_options());
  for (const flow::FlowKey key : keys) {
    cached.process(key);
    plain.process(key);
  }
  const auto truth = exact_counts(keys);
  const std::vector<flow::FlowKey> on_list = cached.heavy_hitters();
  const std::unordered_set<flow::FlowKey> on(on_list.begin(), on_list.end());
  const std::vector<flow::FlowKey> off_list = plain.heavy_hitters();
  const std::unordered_set<flow::FlowKey> off(off_list.begin(), off_list.end());
  // No false negatives: every truly heavy flow is reported with the cache on.
  std::size_t truly_heavy = 0;
  for (const auto& [key, count] : truth) {
    if (count >= kThreshold) {
      ++truly_heavy;
      EXPECT_TRUE(on.contains(key)) << "missed true HH " << key.value;
    }
  }
  ASSERT_GT(truly_heavy, 5u);  // the workload actually has heavy flows
  // No invented heavy hitters: every cache-on report is backed by a combined
  // estimate >= T, and any false positive is a flow the sketch-only pipeline
  // ALSO overestimates past T (the error is inherited, never introduced —
  // est_off >= est_on >= T pointwise).
  for (const flow::FlowKey key : on_list) {
    EXPECT_GE(cached.flow_size(key), kThreshold) << "flow " << key.value;
    const auto truth_it = truth.find(key);
    const std::uint64_t exact =
        truth_it == truth.end() ? 0 : truth_it->second;
    if (exact < kThreshold) {
      EXPECT_GE(plain.flow_size(key), kThreshold)
          << "cache-on invented HH " << key.value
          << " that cache-off does not even overestimate";
    }
  }
  // And the cache-off set misses nothing truly heavy either, so the two
  // pipelines agree on every flow that matters.
  for (const auto& [key, count] : truth) {
    if (count >= kThreshold) {
      EXPECT_TRUE(off.contains(key));
    }
  }
}

TEST(DatapathDifferential, TopKVariantKeepsTheNeverUnderestimateGuarantee) {
  // FCM+TopK's filter state is order-dependent, so no bit-exact claim — the
  // demotion path must still never let a weighted add create underestimates.
  CachedFramework::Options options = cached_options();
  options.framework.topk_entries = 64;
  CachedFramework cached(options);
  const std::vector<flow::FlowKey> keys = zipf_keys(kSeed, 60'000, 2'000);
  for (const flow::FlowKey key : keys) cached.process(key);
  for (const auto& [key, truth] : exact_counts(keys)) {
    ASSERT_GE(cached.flow_size(key), truth)
        << "TopK cache-on underestimates flow " << key.value;
  }
}

TEST(DatapathDifferential, ResetRestoresEmptyState) {
  CachedFramework cached(cached_options());
  for (const flow::FlowKey key : zipf_keys(kSeed, 5'000, 500)) {
    cached.process(key);
  }
  cached.reset();
  EXPECT_EQ(cached.cache().resident_flows(), 0u);
  CachedFramework fresh(cached_options());
  EXPECT_EQ(WireCodec::serialize(cached.snapshot()),
            WireCodec::serialize(fresh.snapshot()));
}

// --- sharded runtime --------------------------------------------------------

runtime::ShardedFcmFramework::Options sharded_options(
    std::size_t shards, std::size_t cache_entries,
    std::uint64_t threshold = 0) {
  runtime::ShardedFcmFramework::Options options;
  options.framework = plain_options(threshold);
  options.shard_count = shards;
  options.cache_entries = cache_entries;
  options.metrics = nullptr;
  return options;
}

class ShardedDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedDifferential, MergedEpochsAreBitExactWithCacheOff) {
  const std::size_t shards = GetParam();
  runtime::ShardedFcmFramework cache_on(sharded_options(shards, 1024));
  runtime::ShardedFcmFramework cache_off(sharded_options(shards, 0));

  for (int epoch = 0; epoch < 3; ++epoch) {
    const std::vector<flow::FlowKey> keys =
        zipf_keys(kSeed + epoch, 40'000, 2'000);
    cache_on.ingest(std::span<const flow::FlowKey>(keys));
    cache_off.ingest(std::span<const flow::FlowKey>(keys));
    const auto report_on = cache_on.rotate();
    const auto report_off = cache_off.rotate();
    // Totals conserved exactly: the epoch drain hands every cached unit back
    // before the markers go in, so per-epoch packet counts agree.
    EXPECT_EQ(report_on.packets, report_off.packets) << "epoch " << epoch;
    EXPECT_EQ(report_on.packets, keys.size()) << "epoch " << epoch;
    // And the merged sketch state is identical, byte for byte (threshold 0:
    // pure counter state, no trajectory-dependent HH ledger).
    EXPECT_EQ(WireCodec::serialize(cache_on.merged_epoch()),
              WireCodec::serialize(cache_off.merged_epoch()))
        << "epoch " << epoch;
  }
  cache_on.stop();
  cache_off.stop();
}

TEST_P(ShardedDifferential, ThresholdRunsAgreeOnEstimatesAndTrueHeavyFlows) {
  const std::size_t shards = GetParam();
  runtime::ShardedFcmFramework cache_on(
      sharded_options(shards, 1024, kThreshold));
  runtime::ShardedFcmFramework cache_off(
      sharded_options(shards, 0, kThreshold));
  const std::vector<flow::FlowKey> keys = zipf_keys(kSeed, 40'000, 2'000);
  cache_on.ingest(std::span<const flow::FlowKey>(keys));
  cache_off.ingest(std::span<const flow::FlowKey>(keys));
  const auto report_on = cache_on.rotate();
  cache_off.rotate();
  // Counter state is identical even with on-path detection enabled: every
  // merged per-flow estimate agrees.
  for (std::uint32_t id = 1; id <= 2'000; ++id) {
    const flow::FlowKey key{id};
    ASSERT_EQ(cache_on.flow_size(key), cache_off.flow_size(key))
        << "flow " << id;
  }
  // The epoch drain demotes every cached unit before the markers, so the
  // re-qualified report misses no truly heavy flow.
  const std::unordered_set<flow::FlowKey> on(report_on.heavy_hitters.begin(),
                                             report_on.heavy_hitters.end());
  std::size_t truly_heavy = 0;
  for (const auto& [key, count] : exact_counts(keys)) {
    if (count >= kThreshold) {
      ++truly_heavy;
      EXPECT_TRUE(on.contains(key)) << "missed true HH " << key.value;
    }
  }
  EXPECT_GT(truly_heavy, 5u);
  // Every report clears the bar against the merged (identical) counters.
  for (const flow::FlowKey key : report_on.heavy_hitters) {
    EXPECT_GE(cache_on.flow_size(key), kThreshold) << "flow " << key.value;
  }
  cache_on.stop();
  cache_off.stop();
}

TEST_P(ShardedDifferential, FlowSizeNeverUnderestimatesAfterRotation) {
  const std::size_t shards = GetParam();
  runtime::ShardedFcmFramework cache_on(sharded_options(shards, 512));
  const std::vector<flow::FlowKey> keys = zipf_keys(kSeed, 40'000, 1'500);
  cache_on.ingest(std::span<const flow::FlowKey>(keys));
  cache_on.rotate();
  for (const auto& [key, truth] : exact_counts(keys)) {
    ASSERT_GE(cache_on.flow_size(key), truth)
        << "sharded cache-on underestimates flow " << key.value;
  }
  cache_on.stop();
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedDifferential,
                         ::testing::Values(std::size_t{1}, std::size_t{4}));

}  // namespace
}  // namespace fcm
