#include "controlplane/em.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flow/synthetic.h"
#include "sketch/mrac.h"

namespace fcm::control {
namespace {

VirtualCounterArray single_vc(std::uint64_t value, std::uint32_t degree,
                              std::size_t leaf_count, std::uint64_t theta1) {
  VirtualCounterArray array;
  array.leaf_count = leaf_count;
  array.leaf_counting_max = theta1;
  array.counters.push_back(VirtualCounter{value, degree});
  return array;
}

TEST(EmFsdEstimator, RejectsEmptyInput) {
  EXPECT_THROW(EmFsdEstimator({}, {}), std::invalid_argument);
}

TEST(EmFsdEstimator, CollisionFreeCountersRecoverExactly) {
  // 100 degree-1 counters of value 3 in a large array: the dominant
  // explanation is 100 flows of size 3.
  VirtualCounterArray array;
  array.leaf_count = 100000;
  array.leaf_counting_max = 254;
  for (int i = 0; i < 100; ++i) array.counters.push_back(VirtualCounter{3, 1});
  EmConfig config;
  config.max_iterations = 8;
  const FlowSizeDistribution fsd = EmFsdEstimator({array}, config).run();
  EXPECT_NEAR(fsd.counts()[3], 100.0, 2.0);
  EXPECT_NEAR(fsd.total_flows(), 100.0, 3.0);
}

TEST(EmFsdEstimator, SplitsObviousCollisions) {
  // 1000 counters of value 1 and 10 of value 2 in a tiny (w=100) array:
  // with n ~ 1000 flows in 100 slots, collisions are the norm, and EM must
  // explain the 2-counters mostly as two size-1 flows rather than inventing
  // size-2 flows. (lambda_1 ~ 10 per slot.)
  VirtualCounterArray array;
  array.leaf_count = 100;
  array.leaf_counting_max = 1u << 20;
  for (int i = 0; i < 90; ++i) array.counters.push_back(VirtualCounter{11, 1});
  for (int i = 0; i < 10; ++i) array.counters.push_back(VirtualCounter{12, 1});
  EmConfig config;
  config.max_iterations = 10;
  config.max_extra_flows = 2;
  const FlowSizeDistribution fsd = EmFsdEstimator({array}, config).run();
  // Exact recovery is not expected; the estimate must keep total mass.
  EXPECT_NEAR(fsd.total_packets(), 90.0 * 11 + 10.0 * 12, 1.0);
}

TEST(EmFsdEstimator, MassConservedEachIteration) {
  // The EM redistributes counter mass over flow sizes; total packet mass is
  // invariant across iterations (up to the fallback paths, which are exact).
  VirtualCounterArray array;
  array.leaf_count = 1000;
  array.leaf_counting_max = 254;
  for (int v = 1; v <= 50; ++v) {
    for (int i = 0; i < 5; ++i) {
      array.counters.push_back(VirtualCounter{static_cast<std::uint64_t>(v), 1});
    }
  }
  const double expected_mass = 5.0 * (50.0 * 51.0 / 2.0);
  EmConfig config;
  config.max_iterations = 1;
  EmFsdEstimator estimator({array}, config);
  EXPECT_NEAR(estimator.current().total_packets(), expected_mass, 1e-6);
  for (int i = 0; i < 5; ++i) {
    estimator.iterate();
    EXPECT_NEAR(estimator.current().total_packets(), expected_mass, expected_mass * 1e-9);
  }
}

TEST(EmFsdEstimator, PaperOmegaConstraintForMergedCounters) {
  // The §4.3 example: a degree-2 virtual counter of value 9 on a tree with
  // theta_1 = 2 can only be explained by flows of size >= 3 (each merged
  // path overflowed); the two-flow combos are {3,6} and {4,5}.
  const VirtualCounterArray array = single_vc(9, 2, 1024, 2);
  EmConfig config;
  config.max_iterations = 3;
  config.max_extra_flows = 0;  // exactly-two-flow combos only
  const FlowSizeDistribution fsd = EmFsdEstimator({array}, config).run();
  EXPECT_NEAR(fsd.counts()[1], 0.0, 1e-9);
  EXPECT_NEAR(fsd.counts()[2], 0.0, 1e-9);
  EXPECT_NEAR(fsd.counts()[7], 0.0, 1e-9);  // {2,7} is invalid: 2 <= theta
  EXPECT_NEAR(fsd.counts()[8], 0.0, 1e-9);  // {1,8} is invalid
  EXPECT_NEAR(fsd.counts()[9], 0.0, 1e-9);  // one flow cannot merge 2 paths
  const double mass_in_valid_range =
      fsd.counts()[3] + fsd.counts()[4] + fsd.counts()[5] + fsd.counts()[6];
  EXPECT_NEAR(mass_in_valid_range, 2.0, 1e-6);
}

TEST(EmFsdEstimator, LargeCountersUseFallbackSplit) {
  // Values above the enumeration cap must still be accounted for.
  const VirtualCounterArray array = single_vc(100000, 1, 1024, 254);
  EmConfig config;
  config.max_iterations = 2;
  config.value_enumeration_cap = 300;
  const FlowSizeDistribution fsd = EmFsdEstimator({array}, config).run();
  EXPECT_NEAR(fsd.counts()[100000], 1.0, 1e-9);
}

TEST(EmFsdEstimator, HighDegreeFallback) {
  // Degree above max_enumeration_degree: minimal-flow split.
  const VirtualCounterArray array = single_vc(2000, 6, 4096, 254);
  EmConfig config;
  config.max_iterations = 1;
  config.max_enumeration_degree = 3;
  const FlowSizeDistribution fsd = EmFsdEstimator({array}, config).run();
  // 5 flows of 255 and one of 2000 - 5*255 = 725.
  EXPECT_NEAR(fsd.counts()[255], 5.0, 1e-9);
  EXPECT_NEAR(fsd.counts()[725], 1.0, 1e-9);
}

TEST(EmFsdEstimator, MultiTreeAveragesTrees) {
  // Two identical trees must give the same answer as one (Eqn. 5).
  const VirtualCounterArray array = single_vc(5, 1, 1000, 254);
  EmConfig config;
  config.max_iterations = 3;
  const auto single = EmFsdEstimator({array}, config).run();
  const auto doubled = EmFsdEstimator({array, array}, config).run();
  ASSERT_EQ(single.counts().size(), doubled.counts().size());
  for (std::size_t j = 0; j < single.counts().size(); ++j) {
    EXPECT_NEAR(single.counts()[j], doubled.counts()[j], 1e-9);
  }
}

TEST(EmFsdEstimator, MultithreadMatchesSinglethread) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 50000;
  trace_config.flow_count = 5000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  core::FcmConfig fcm_config = core::FcmConfig::for_memory(100'000, 2, 8, {8, 16, 32});
  core::FcmSketch sketch(fcm_config);
  for (const flow::Packet& p : trace.packets()) sketch.update(p.key);

  EmConfig single_config;
  single_config.max_iterations = 3;
  single_config.thread_count = 1;
  EmConfig multi_config = single_config;
  multi_config.thread_count = 4;

  const auto single = EmFsdEstimator(convert_sketch(sketch), single_config).run();
  const auto multi = EmFsdEstimator(convert_sketch(sketch), multi_config).run();
  ASSERT_EQ(single.counts().size(), multi.counts().size());
  for (std::size_t j = 0; j < single.counts().size(); ++j) {
    ASSERT_NEAR(single.counts()[j], multi.counts()[j], 1e-6);
  }
}

TEST(EmFsdEstimator, DeterministicAcrossRuns) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 40000;
  trace_config.flow_count = 4000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  core::FcmSketch sketch(core::FcmConfig::for_memory(80'000, 2, 8, {8, 16, 32}));
  for (const flow::Packet& p : trace.packets()) sketch.update(p.key);

  EmConfig config;
  config.max_iterations = 4;
  const auto first = EmFsdEstimator(convert_sketch(sketch), config).run();
  const auto second = EmFsdEstimator(convert_sketch(sketch), config).run();
  ASSERT_EQ(first.counts().size(), second.counts().size());
  for (std::size_t j = 0; j < first.counts().size(); ++j) {
    ASSERT_EQ(first.counts()[j], second.counts()[j]) << "size " << j;
  }
}

TEST(EmFsdEstimator, IterationCallbackInvoked) {
  const VirtualCounterArray array = single_vc(5, 1, 1000, 254);
  EmConfig config;
  config.max_iterations = 4;
  std::size_t calls = 0;
  EmFsdEstimator({array}, config).run([&](std::size_t i, double seconds, const auto&) {
    EXPECT_EQ(i, calls);
    EXPECT_GE(seconds, 0.0);
    ++calls;
  });
  EXPECT_EQ(calls, 4u);
}

TEST(EmFsdEstimator, ImprovesWmreOverInitialGuessOnRealTraffic) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 200000;
  trace_config.flow_count = 20000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  const flow::GroundTruth truth(trace);
  const auto true_fsd = truth.flow_size_distribution();

  core::FcmConfig fcm_config = core::FcmConfig::for_memory(300'000, 2, 8, {8, 16, 32});
  core::FcmSketch sketch(fcm_config);
  for (const flow::Packet& p : trace.packets()) sketch.update(p.key);

  EmConfig config;
  config.max_iterations = 6;
  EmFsdEstimator estimator(convert_sketch(sketch), config);
  const double initial_wmre = estimator.current().wmre(true_fsd);
  const auto final_fsd = estimator.run();
  EXPECT_LT(final_fsd.wmre(true_fsd), initial_wmre);
  EXPECT_LT(final_fsd.wmre(true_fsd), 0.3);
}

TEST(EmFsdEstimator, MracCountersWork) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 100000;
  trace_config.flow_count = 10000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  const flow::GroundTruth truth(trace);

  sketch::Mrac mrac = sketch::Mrac::for_memory(200'000);
  for (const flow::Packet& p : trace.packets()) mrac.update(p.key);

  EmConfig config;
  config.max_iterations = 5;
  const auto fsd =
      EmFsdEstimator({from_plain_counters(mrac.counters())}, config).run();
  EXPECT_LT(fsd.wmre(truth.flow_size_distribution()), 0.3);
  EXPECT_NEAR(fsd.total_flows(), static_cast<double>(truth.flow_count()),
              truth.flow_count() * 0.15);
}

}  // namespace
}  // namespace fcm::control
