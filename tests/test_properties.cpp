// Property-based tests over randomized traces (DESIGN.md §8, testing).
//
// A tiny in-repo property harness: key sequences are generated from the
// deterministic common/random.h PRNG (so every failure is reproducible from
// the seed printed in the assertion message), properties are pure predicates
// over a key sequence, and failing sequences are minimized with a
// ddmin-style chunk-removal shrinker before being reported.
//
// Properties:
//   * never-underestimate: for FcmSketch, CmSketch, CuSketch and FcmTopK,
//     query(k) >= true count of k after any update sequence;
//   * monotonicity: query(k) never decreases while updates of other flows
//     are interleaved (counters only grow);
//   * the shrinker itself is exercised against a deliberately lossy sketch
//     to prove it reduces counterexamples to the minimal trigger.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "fcm/fcm_sketch.h"
#include "fcm/fcm_topk.h"
#include "flow/flow_key.h"
#include "sketch/cm_sketch.h"

namespace fcm {
namespace {

// Small geometry so 40k packets over 2k flows actually exercises overflow
// promotion through all three stages.
core::FcmConfig small_fcm_config(std::uint64_t seed) {
  core::FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 8 * 8 * 64;  // 4096 leaves
  config.seed = seed;
  return config;
}

core::FcmTopK::Config small_topk_config(std::uint64_t seed) {
  core::FcmTopK::Config config;
  config.fcm = small_fcm_config(seed);
  config.topk_entries = 64;
  return config;
}

// Skewed random key sequence: cubing the uniform draw concentrates mass on
// low key ids, giving a few heavy flows (stage-overflow pressure) and a
// long tail (leaf-collision pressure).
std::vector<flow::FlowKey> random_keys(std::uint64_t seed, std::size_t length,
                                       std::uint32_t universe) {
  common::Xoshiro256 rng(seed);
  std::vector<flow::FlowKey> keys;
  keys.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double u = rng.next_double();
    const auto id = static_cast<std::uint32_t>(u * u * u * universe);
    keys.push_back(flow::FlowKey{id});
  }
  return keys;
}

struct Counterexample {
  flow::FlowKey key{};
  std::uint64_t estimate = 0;
  std::uint64_t expected = 0;
};

// A property maps a key sequence to nullopt (holds) or a counterexample.
using Property =
    std::function<std::optional<Counterexample>(const std::vector<flow::FlowKey>&)>;

// query(k) must dominate the exact count of k for every flow in the trace.
template <typename MakeSketch>
Property never_underestimate(MakeSketch make) {
  return [make](const std::vector<flow::FlowKey>& keys)
             -> std::optional<Counterexample> {
    auto sketch = make();
    std::unordered_map<flow::FlowKey, std::uint64_t> truth;
    for (const flow::FlowKey key : keys) {
      sketch.update(key);
      ++truth[key];
    }
    for (const auto& [key, count] : truth) {
      const std::uint64_t estimate = sketch.query(key);
      if (estimate < count) return Counterexample{key, estimate, count};
    }
    return std::nullopt;
  };
}

// Interleaved insert/query: the estimate of the first key in the sequence
// must never shrink as other flows stream in (counters are monotone).
template <typename MakeSketch>
Property monotone_estimates(MakeSketch make) {
  return [make](const std::vector<flow::FlowKey>& keys)
             -> std::optional<Counterexample> {
    if (keys.empty()) return std::nullopt;
    auto sketch = make();
    const flow::FlowKey tracked = keys.front();
    std::uint64_t last = 0;
    for (const flow::FlowKey key : keys) {
      sketch.update(key);
      const std::uint64_t now = sketch.query(tracked);
      if (now < last) return Counterexample{tracked, now, last};
      last = now;
    }
    return std::nullopt;
  };
}

// ddmin-style shrinker: repeatedly delete chunks (halving the chunk size)
// while the property still fails. Deterministic and O(n log n) checks.
std::vector<flow::FlowKey> shrink(std::vector<flow::FlowKey> keys,
                                  const Property& property) {
  for (std::size_t chunk = keys.size() / 2; chunk > 0; chunk /= 2) {
    std::size_t start = 0;
    while (start + chunk <= keys.size()) {
      std::vector<flow::FlowKey> candidate;
      candidate.reserve(keys.size() - chunk);
      candidate.insert(candidate.end(), keys.begin(),
                       keys.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       keys.begin() + static_cast<std::ptrdiff_t>(start + chunk),
                       keys.end());
      if (!candidate.empty() && property(candidate).has_value()) {
        keys = std::move(candidate);  // keep the removal, retry same offset
      } else {
        start += chunk;
      }
    }
  }
  return keys;
}

std::string render_keys(const std::vector<flow::FlowKey>& keys) {
  std::ostringstream out;
  const std::size_t shown = std::min<std::size_t>(keys.size(), 24);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    out << keys[i].value;
  }
  if (shown < keys.size()) out << ", ... (" << keys.size() << " total)";
  return out.str();
}

// Runs `property` on a generated sequence; on failure, shrinks and reports
// the minimal reproducer together with the generator seed.
void expect_property(const Property& property, std::uint64_t seed,
                     std::size_t length, std::uint32_t universe,
                     const char* name) {
  const std::vector<flow::FlowKey> keys = random_keys(seed, length, universe);
  const std::optional<Counterexample> failure = property(keys);
  if (!failure) return;
  const std::vector<flow::FlowKey> minimal = shrink(keys, property);
  const std::optional<Counterexample> min_failure = property(minimal);
  const Counterexample& report = min_failure ? *min_failure : *failure;
  FAIL() << name << " violated (seed " << seed << "): key " << report.key.value
         << " estimated " << report.estimate << " < expected "
         << report.expected << "\nminimal reproducer (" << minimal.size()
         << " updates): " << render_keys(minimal);
}

class SketchPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

constexpr std::size_t kUpdates = 40'000;
constexpr std::uint32_t kUniverse = 2'000;

TEST_P(SketchPropertyTest, FcmSketchNeverUnderestimates) {
  const std::uint64_t seed = GetParam();
  expect_property(never_underestimate([seed] {
                    return core::FcmSketch(small_fcm_config(seed));
                  }),
                  seed, kUpdates, kUniverse, "FcmSketch never-underestimate");
}

TEST_P(SketchPropertyTest, CmSketchNeverUnderestimates) {
  const std::uint64_t seed = GetParam();
  expect_property(never_underestimate([] {
                    return sketch::CmSketch::for_memory(64 * 1024);
                  }),
                  seed, kUpdates, kUniverse, "CmSketch never-underestimate");
}

TEST_P(SketchPropertyTest, CuSketchNeverUnderestimates) {
  const std::uint64_t seed = GetParam();
  expect_property(never_underestimate([] {
                    return sketch::CuSketch::for_memory(64 * 1024);
                  }),
                  seed, kUpdates, kUniverse, "CuSketch never-underestimate");
}

TEST_P(SketchPropertyTest, FcmTopKNeverUnderestimates) {
  const std::uint64_t seed = GetParam();
  expect_property(never_underestimate([seed] {
                    return core::FcmTopK(small_topk_config(seed));
                  }),
                  seed, kUpdates, kUniverse, "FcmTopK never-underestimate");
}

TEST_P(SketchPropertyTest, FcmSketchEstimatesMonotone) {
  const std::uint64_t seed = GetParam();
  expect_property(monotone_estimates([seed] {
                    return core::FcmSketch(small_fcm_config(seed));
                  }),
                  seed, kUpdates / 4, kUniverse, "FcmSketch monotonicity");
}

TEST_P(SketchPropertyTest, CmSketchEstimatesMonotone) {
  const std::uint64_t seed = GetParam();
  expect_property(monotone_estimates([] {
                    return sketch::CmSketch::for_memory(64 * 1024);
                  }),
                  seed, kUpdates / 4, kUniverse, "CmSketch monotonicity");
}

TEST_P(SketchPropertyTest, FcmTopKEstimatesMonotone) {
  const std::uint64_t seed = GetParam();
  expect_property(monotone_estimates([seed] {
                    return core::FcmTopK(small_topk_config(seed));
                  }),
                  seed, kUpdates / 4, kUniverse, "FcmTopK monotonicity");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchPropertyTest,
                         ::testing::Values(1ull, 42ull, 0xfca1ull,
                                           0xdecafbadull));

// --- the harness itself ------------------------------------------------------

// A sketch that silently saturates at a cap: the canonical underestimating
// bug. The shrinker must reduce any failing trace to exactly cap+1 updates
// of a single key.
class SaturatingSketch {
 public:
  explicit SaturatingSketch(std::uint64_t cap) : cap_(cap) {}

  void update(flow::FlowKey key) {
    std::uint64_t& cell = counts_[key];
    if (cell < cap_) ++cell;
  }
  std::uint64_t query(flow::FlowKey key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

 private:
  std::uint64_t cap_;
  std::unordered_map<flow::FlowKey, std::uint64_t> counts_;
};

TEST(PropertyHarness, ShrinkerFindsMinimalCounterexample) {
  constexpr std::uint64_t kCap = 7;
  const Property property =
      never_underestimate([] { return SaturatingSketch(kCap); });
  const std::vector<flow::FlowKey> keys = random_keys(3, 4'000, 40);
  ASSERT_TRUE(property(keys).has_value())
      << "generator must overflow the saturating cap";
  const std::vector<flow::FlowKey> minimal = shrink(keys, property);
  // Minimal failing trace: one key updated cap+1 times.
  EXPECT_EQ(minimal.size(), kCap + 1);
  ASSERT_TRUE(property(minimal).has_value());
  const Counterexample failure = *property(minimal);
  for (const flow::FlowKey key : minimal) EXPECT_EQ(key, failure.key);
  EXPECT_EQ(failure.estimate, kCap);
  EXPECT_EQ(failure.expected, kCap + 1);
}

TEST(PropertyHarness, ShrinkerPreservesFailureUnderChunkRemoval) {
  // Two independent saturation bugs: shrinking must keep at least one.
  constexpr std::uint64_t kCap = 3;
  const Property property =
      never_underestimate([] { return SaturatingSketch(kCap); });
  std::vector<flow::FlowKey> keys;
  for (int i = 0; i < 10; ++i) keys.push_back(flow::FlowKey{1});
  for (int i = 0; i < 10; ++i) keys.push_back(flow::FlowKey{2});
  const std::vector<flow::FlowKey> minimal = shrink(keys, property);
  EXPECT_EQ(minimal.size(), kCap + 1);
  ASSERT_TRUE(property(minimal).has_value());
}

}  // namespace
}  // namespace fcm
