// Property-based tests over randomized traces (DESIGN.md §8, testing).
//
// The harness itself (deterministic skewed key generation, Property shape,
// ddmin chunk-removal shrinker, expect_property reporting) lives in
// tests/property_harness.h, shared with the wire-format round-trip suite.
//
// Properties:
//   * never-underestimate: for FcmSketch, CmSketch, CuSketch and FcmTopK,
//     query(k) >= true count of k after any update sequence;
//   * monotonicity: query(k) never decreases while updates of other flows
//     are interleaved (counters only grow);
//   * the shrinker itself is exercised against a deliberately lossy sketch
//     to prove it reduces counterexamples to the minimal trigger.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fcm/fcm_sketch.h"
#include "fcm/fcm_topk.h"
#include "flow/flow_key.h"
#include "property_harness.h"
#include "sketch/cm_sketch.h"

namespace fcm {
namespace {

using proptest::Counterexample;
using proptest::expect_property;
using proptest::Property;
using proptest::random_keys;
using proptest::shrink;
using proptest::small_fcm_config;
using proptest::small_topk_config;

// query(k) must dominate the exact count of k for every flow in the trace.
template <typename MakeSketch>
Property never_underestimate(MakeSketch make) {
  return [make](const std::vector<flow::FlowKey>& keys)
             -> std::optional<Counterexample> {
    auto sketch = make();
    std::unordered_map<flow::FlowKey, std::uint64_t> truth;
    for (const flow::FlowKey key : keys) {
      sketch.update(key);
      ++truth[key];
    }
    for (const auto& [key, count] : truth) {
      const std::uint64_t estimate = sketch.query(key);
      if (estimate < count) return Counterexample{key, estimate, count};
    }
    return std::nullopt;
  };
}

// Interleaved insert/query: the estimate of the first key in the sequence
// must never shrink as other flows stream in (counters are monotone).
template <typename MakeSketch>
Property monotone_estimates(MakeSketch make) {
  return [make](const std::vector<flow::FlowKey>& keys)
             -> std::optional<Counterexample> {
    if (keys.empty()) return std::nullopt;
    auto sketch = make();
    const flow::FlowKey tracked = keys.front();
    std::uint64_t last = 0;
    for (const flow::FlowKey key : keys) {
      sketch.update(key);
      const std::uint64_t now = sketch.query(tracked);
      if (now < last) return Counterexample{tracked, now, last};
      last = now;
    }
    return std::nullopt;
  };
}

class SketchPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

constexpr std::size_t kUpdates = 40'000;
constexpr std::uint32_t kUniverse = 2'000;

TEST_P(SketchPropertyTest, FcmSketchNeverUnderestimates) {
  const std::uint64_t seed = GetParam();
  expect_property(never_underestimate([seed] {
                    return core::FcmSketch(small_fcm_config(seed));
                  }),
                  seed, kUpdates, kUniverse, "FcmSketch never-underestimate");
}

TEST_P(SketchPropertyTest, CmSketchNeverUnderestimates) {
  const std::uint64_t seed = GetParam();
  expect_property(never_underestimate([] {
                    return sketch::CmSketch::for_memory(64 * 1024);
                  }),
                  seed, kUpdates, kUniverse, "CmSketch never-underestimate");
}

TEST_P(SketchPropertyTest, CuSketchNeverUnderestimates) {
  const std::uint64_t seed = GetParam();
  expect_property(never_underestimate([] {
                    return sketch::CuSketch::for_memory(64 * 1024);
                  }),
                  seed, kUpdates, kUniverse, "CuSketch never-underestimate");
}

TEST_P(SketchPropertyTest, FcmTopKNeverUnderestimates) {
  const std::uint64_t seed = GetParam();
  expect_property(never_underestimate([seed] {
                    return core::FcmTopK(small_topk_config(seed));
                  }),
                  seed, kUpdates, kUniverse, "FcmTopK never-underestimate");
}

TEST_P(SketchPropertyTest, FcmSketchEstimatesMonotone) {
  const std::uint64_t seed = GetParam();
  expect_property(monotone_estimates([seed] {
                    return core::FcmSketch(small_fcm_config(seed));
                  }),
                  seed, kUpdates / 4, kUniverse, "FcmSketch monotonicity");
}

TEST_P(SketchPropertyTest, CmSketchEstimatesMonotone) {
  const std::uint64_t seed = GetParam();
  expect_property(monotone_estimates([] {
                    return sketch::CmSketch::for_memory(64 * 1024);
                  }),
                  seed, kUpdates / 4, kUniverse, "CmSketch monotonicity");
}

TEST_P(SketchPropertyTest, FcmTopKEstimatesMonotone) {
  const std::uint64_t seed = GetParam();
  expect_property(monotone_estimates([seed] {
                    return core::FcmTopK(small_topk_config(seed));
                  }),
                  seed, kUpdates / 4, kUniverse, "FcmTopK monotonicity");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchPropertyTest,
                         ::testing::Values(1ull, 42ull, 0xfca1ull,
                                           0xdecafbadull));

// --- the harness itself ------------------------------------------------------

// A sketch that silently saturates at a cap: the canonical underestimating
// bug. The shrinker must reduce any failing trace to exactly cap+1 updates
// of a single key.
class SaturatingSketch {
 public:
  explicit SaturatingSketch(std::uint64_t cap) : cap_(cap) {}

  void update(flow::FlowKey key) {
    std::uint64_t& cell = counts_[key];
    if (cell < cap_) ++cell;
  }
  std::uint64_t query(flow::FlowKey key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

 private:
  std::uint64_t cap_;
  std::unordered_map<flow::FlowKey, std::uint64_t> counts_;
};

TEST(PropertyHarness, ShrinkerFindsMinimalCounterexample) {
  constexpr std::uint64_t kCap = 7;
  const Property property =
      never_underestimate([] { return SaturatingSketch(kCap); });
  const std::vector<flow::FlowKey> keys = random_keys(3, 4'000, 40);
  ASSERT_TRUE(property(keys).has_value())
      << "generator must overflow the saturating cap";
  const std::vector<flow::FlowKey> minimal = shrink(keys, property);
  // Minimal failing trace: one key updated cap+1 times.
  EXPECT_EQ(minimal.size(), kCap + 1);
  ASSERT_TRUE(property(minimal).has_value());
  const Counterexample failure = *property(minimal);
  for (const flow::FlowKey key : minimal) EXPECT_EQ(key, failure.key);
  EXPECT_EQ(failure.estimate, kCap);
  EXPECT_EQ(failure.expected, kCap + 1);
}

TEST(PropertyHarness, ShrinkerPreservesFailureUnderChunkRemoval) {
  // Two independent saturation bugs: shrinking must keep at least one.
  constexpr std::uint64_t kCap = 3;
  const Property property =
      never_underestimate([] { return SaturatingSketch(kCap); });
  std::vector<flow::FlowKey> keys;
  for (int i = 0; i < 10; ++i) keys.push_back(flow::FlowKey{1});
  for (int i = 0; i < 10; ++i) keys.push_back(flow::FlowKey{2});
  const std::vector<flow::FlowKey> minimal = shrink(keys, property);
  EXPECT_EQ(minimal.size(), kCap + 1);
  ASSERT_TRUE(property(minimal).has_value());
}

}  // namespace
}  // namespace fcm
