#include "pisa/pipeline.h"

#include <gtest/gtest.h>

namespace fcm::pisa {
namespace {

TEST(Pipeline, RegisterArrayValidation) {
  Pipeline pipeline;
  EXPECT_THROW(pipeline.add_register_array("bad", 1, 10), std::invalid_argument);
  EXPECT_THROW(pipeline.add_register_array("bad", 33, 10), std::invalid_argument);
  EXPECT_THROW(pipeline.add_register_array("bad", 8, 0), std::invalid_argument);
}

TEST(Pipeline, StageBudgetEnforced) {
  PipelineLimits limits;
  limits.max_stages = 2;
  Pipeline pipeline(limits);
  pipeline.add_stage();
  pipeline.add_stage();
  pipeline.add_stage();
  EXPECT_THROW(pipeline.validate(), std::runtime_error);
}

TEST(Pipeline, SaluPerStageBudgetEnforced) {
  PipelineLimits limits;
  limits.max_salus_per_stage = 2;
  Pipeline pipeline(limits);
  const auto stage = pipeline.add_stage();
  for (int i = 0; i < 3; ++i) {
    const auto array = pipeline.add_register_array("r" + std::to_string(i), 8, 16);
    pipeline.add_action(stage, SaluAction{SaluAction::Kind::kRead, array, 0, 1});
  }
  EXPECT_THROW(pipeline.validate(), std::runtime_error);
}

TEST(Pipeline, OneAccessPerArrayPerPacket) {
  Pipeline pipeline;
  const auto array = pipeline.add_register_array("r", 8, 16);
  const auto s1 = pipeline.add_stage();
  const auto s2 = pipeline.add_stage();
  pipeline.add_action(s1, SaluAction{SaluAction::Kind::kRead, array, 0, 1});
  pipeline.add_action(s2, SaluAction{SaluAction::Kind::kRead, array, 0, 2});
  EXPECT_THROW(pipeline.validate(), std::runtime_error);
}

TEST(Pipeline, DoubleAccessWithinStageRejected) {
  Pipeline pipeline;
  const auto array = pipeline.add_register_array("r", 8, 16);
  const auto s1 = pipeline.add_stage();
  pipeline.add_action(s1, SaluAction{SaluAction::Kind::kRead, array, 0, 1});
  pipeline.add_action(s1, SaluAction{SaluAction::Kind::kRead, array, 0, 2});
  EXPECT_THROW(pipeline.validate(), std::runtime_error);
}

TEST(Pipeline, StageSramBudgetEnforced) {
  PipelineLimits limits;
  limits.max_register_bytes_per_stage = 1024;
  Pipeline pipeline(limits);
  const auto array = pipeline.add_register_array("big", 32, 1024);  // 4 KB
  const auto stage = pipeline.add_stage();
  pipeline.add_action(stage, SaluAction{SaluAction::Kind::kRead, array, 0, 1});
  EXPECT_THROW(pipeline.validate(), std::runtime_error);
}

TEST(Pipeline, FcmIncrementSaturatesAtMarker) {
  Pipeline pipeline;
  const auto array = pipeline.add_register_array("r", 2, 4);
  const auto stage = pipeline.add_stage();
  pipeline.add_action(stage,
                      FieldAction{FieldAction::Op::kSetImm, 0, -1, -1, 2, -1});
  pipeline.add_action(stage,
                      SaluAction{SaluAction::Kind::kFcmIncrement, array, 0, 1});
  Phv phv;
  for (int i = 1; i <= 5; ++i) {
    pipeline.process(phv);
    EXPECT_EQ(phv.fields[1], std::min<std::uint64_t>(i, 3));
  }
  EXPECT_EQ(pipeline.register_array(array).at(2), 3u);  // marker, stuck
}

TEST(Pipeline, AddFieldSaturating) {
  Pipeline pipeline;
  const auto array = pipeline.add_register_array("r", 8, 2);
  const auto stage = pipeline.add_stage();
  pipeline.add_action(stage, FieldAction{FieldAction::Op::kSetImm, 0, -1, -1, 0, -1});
  pipeline.add_action(stage, FieldAction{FieldAction::Op::kSetImm, 1, -1, -1, 200, -1});
  pipeline.add_action(
      stage, SaluAction{SaluAction::Kind::kAddFieldSaturating, array, 0, 2, 1});
  Phv phv;
  pipeline.process(phv);
  EXPECT_EQ(phv.fields[2], 200u);
  pipeline.process(phv);
  EXPECT_EQ(phv.fields[2], 255u);  // saturated at 2^8-1
}

TEST(Pipeline, SwapOutputsOldValue) {
  Pipeline pipeline;
  const auto array = pipeline.add_register_array("r", 16, 2);
  const auto stage = pipeline.add_stage();
  pipeline.add_action(stage, FieldAction{FieldAction::Op::kSetImm, 0, -1, -1, 1, -1});
  pipeline.add_action(stage, FieldAction{FieldAction::Op::kSetImm, 1, -1, -1, 42, -1});
  pipeline.add_action(stage, SaluAction{SaluAction::Kind::kSwap, array, 0, 2, 1});
  Phv phv;
  pipeline.process(phv);
  EXPECT_EQ(phv.fields[2], 0u);
  EXPECT_EQ(pipeline.register_array(array).at(1), 42u);
  pipeline.process(phv);
  EXPECT_EQ(phv.fields[2], 42u);
}

TEST(Pipeline, GatingSkipsActions) {
  Pipeline pipeline;
  const auto array = pipeline.add_register_array("r", 8, 1);
  const auto stage = pipeline.add_stage();
  // Gate field 5 is set by the packet metadata below; the sALU and a field
  // op are both predicated on it.
  pipeline.add_action(
      stage, SaluAction{SaluAction::Kind::kFcmIncrement, array, 0, 1, -1, 5});
  pipeline.add_action(stage, FieldAction{FieldAction::Op::kSetImm, 6, -1, -1, 7, 5});

  Phv gated_off;
  gated_off.fields[5] = 0;
  pipeline.process(gated_off);
  EXPECT_EQ(pipeline.register_array(array).at(0), 0u);
  EXPECT_EQ(gated_off.fields[6], 0u);

  Phv gated_on;
  gated_on.fields[5] = 1;
  pipeline.process(gated_on);
  EXPECT_EQ(pipeline.register_array(array).at(0), 1u);
  EXPECT_EQ(gated_on.fields[6], 7u);
}

TEST(Pipeline, FieldOps) {
  Pipeline pipeline;
  const auto stage = pipeline.add_stage();
  using Op = FieldAction::Op;
  pipeline.add_action(stage, FieldAction{Op::kSetImm, 0, -1, -1, 10, -1});
  pipeline.add_action(stage, FieldAction{Op::kCopy, 1, 0, -1, 0, -1});
  pipeline.add_action(stage, FieldAction{Op::kAddField, 1, 0, -1, 0, -1});  // 20
  pipeline.add_action(stage, FieldAction{Op::kDivImm, 1, -1, -1, 4, -1});   // 5
  pipeline.add_action(stage, FieldAction{Op::kCmpEqImm, 2, 1, -1, 5, -1});  // 1
  pipeline.add_action(stage, FieldAction{Op::kAnd, 3, 2, 0, 0, -1});        // 1
  pipeline.add_action(stage, FieldAction{Op::kSelect, 4, 3, 0, 99, -1});    // 10
  pipeline.add_action(stage, FieldAction{Op::kMinField, 4, 1, -1, 0, -1});  // 5
  Phv phv;
  pipeline.process(phv);
  EXPECT_EQ(phv.fields[1], 5u);
  EXPECT_EQ(phv.fields[2], 1u);
  EXPECT_EQ(phv.fields[3], 1u);
  EXPECT_EQ(phv.fields[4], 5u);
}

}  // namespace
}  // namespace fcm::pisa
