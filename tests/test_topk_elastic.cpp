// Tests for the TopK filter, ElasticSketch and UnivMon.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/synthetic.h"
#include "metrics/evaluator.h"
#include "sketch/elastic_sketch.h"
#include "sketch/topk_filter.h"
#include "sketch/univmon.h"

namespace fcm::sketch {
namespace {

using Outcome = TopKFilter::Offer::Outcome;

TEST(TopKFilter, InstallsIntoEmptyBucket) {
  TopKFilter filter(16);
  const auto offer = filter.offer(flow::FlowKey{1});
  EXPECT_EQ(offer.outcome, Outcome::kKept);
  const auto hit = filter.query(flow::FlowKey{1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->count, 1u);
  EXPECT_FALSE(hit->has_light_part);
}

TEST(TopKFilter, MatchingKeyAccumulates) {
  TopKFilter filter(16);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(filter.offer(flow::FlowKey{1}).outcome, Outcome::kKept);
  }
  EXPECT_EQ(filter.query(flow::FlowKey{1})->count, 10u);
}

// Finds two keys mapping to the same bucket of a 1-entry filter trivially.
TEST(TopKFilter, VoteBasedEviction) {
  TopKFilter filter(1, /*eviction_lambda=*/8);
  filter.offer(flow::FlowKey{1});  // incumbent, count 1
  // 7 mismatches pass through; the 8th (negative >= 8*1) evicts.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(filter.offer(flow::FlowKey{2}).outcome, Outcome::kPassThrough);
  }
  const auto offer = filter.offer(flow::FlowKey{2});
  EXPECT_EQ(offer.outcome, Outcome::kEvicted);
  EXPECT_EQ(offer.evicted_key, flow::FlowKey{1});
  EXPECT_EQ(offer.evicted_count, 1u);
  // Challenger installed with the light-residue flag.
  const auto hit = filter.query(flow::FlowKey{2});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->count, 1u);
  EXPECT_TRUE(hit->has_light_part);
}

TEST(TopKFilter, HeavyIncumbentResistsEviction) {
  TopKFilter filter(1, 8);
  for (int i = 0; i < 100; ++i) filter.offer(flow::FlowKey{1});
  // 100 * 8 - 1 mismatches must not evict.
  for (int i = 0; i < 799; ++i) {
    ASSERT_EQ(filter.offer(flow::FlowKey{2}).outcome, Outcome::kPassThrough);
  }
  EXPECT_EQ(filter.offer(flow::FlowKey{2}).outcome, Outcome::kEvicted);
}

TEST(TopKFilter, EntriesEnumeratesResidents) {
  TopKFilter filter(64);
  for (std::uint32_t k = 1; k <= 20; ++k) filter.offer(flow::FlowKey{k});
  EXPECT_LE(filter.entries().size(), 20u);
  EXPECT_GE(filter.entries().size(), 10u);  // most land in distinct buckets
}

TEST(TopKFilter, RejectsBadParameters) {
  EXPECT_THROW(TopKFilter(0), std::invalid_argument);
  EXPECT_THROW(TopKFilter(8, 0), std::invalid_argument);
}

// --- ElasticSketch -----------------------------------------------------------

TEST(ElasticSketch, HeavyFlowStaysExactInHeavyPart) {
  ElasticSketch::Config config;
  config.heavy_levels = 2;
  config.entries_per_level = 64;
  config.light_counters = 4096;
  ElasticSketch elastic(config);
  for (int i = 0; i < 500; ++i) elastic.update(flow::FlowKey{7});
  EXPECT_EQ(elastic.query(flow::FlowKey{7}), 500u);
  EXPECT_EQ(elastic.heavy_flows().at(flow::FlowKey{7}), 500u);
}

TEST(ElasticSketch, LightPartSaturatesAt255) {
  ElasticSketch::Config config;
  config.heavy_levels = 1;
  config.entries_per_level = 1;
  config.light_counters = 64;
  ElasticSketch elastic(config);
  // Flow 1 owns the single heavy bucket; flow 2's pass-through packets land
  // in one 8-bit light cell, which must saturate at 255 instead of wrapping.
  for (int i = 0; i < 100000; ++i) {
    elastic.update(flow::FlowKey{1});
    elastic.update(flow::FlowKey{2});
  }
  for (const auto cell : elastic.light_counters()) {
    ASSERT_LE(cell, 255u);
  }
  // The non-heavy flow's estimate is capped by the 8-bit light part — the
  // exact failure mode the paper attributes to CM+TopK (§8.2.2).
  if (!elastic.query(flow::FlowKey{2})) GTEST_SKIP();
  EXPECT_LE(elastic.light_query(flow::FlowKey{2}), 255u);
}

TEST(ElasticSketch, ForMemoryValidatesBudget) {
  EXPECT_THROW(ElasticSketch::for_memory(1000), std::invalid_argument);
  const ElasticSketch elastic = ElasticSketch::for_memory(1'000'000);
  EXPECT_LE(elastic.memory_bytes(), 1'000'001u);
  EXPECT_GE(elastic.memory_bytes(), 900'000u);
}

TEST(ElasticSketch, ReasonableAccuracyOnTraffic) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 200000;
  config.flow_count = 20000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  ElasticSketch elastic = ElasticSketch::for_memory(600'000);
  metrics::feed(elastic, trace);
  const auto errors = metrics::evaluate_sizes(elastic, truth);
  EXPECT_LT(errors.are, 1.0);
}

TEST(ElasticSketch, ClearResets) {
  ElasticSketch elastic = ElasticSketch::for_memory(400'000);
  for (int i = 0; i < 100; ++i) elastic.update(flow::FlowKey{3});
  elastic.clear();
  EXPECT_EQ(elastic.query(flow::FlowKey{3}), 0u);
  EXPECT_TRUE(elastic.heavy_flows().empty());
}

// --- UnivMon ------------------------------------------------------------------

TEST(UnivMon, CardinalityWithinTwentyPercent) {
  UnivMon::Config config;
  config.levels = 12;
  config.cs_width = 4096;
  config.heap_capacity = 512;
  UnivMon univmon(config);
  constexpr std::size_t kFlows = 5000;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    const flow::FlowKey key{i * 2654435761u + 17};
    for (int rep = 0; rep < 3; ++rep) univmon.update(key);
  }
  EXPECT_NEAR(univmon.estimate_cardinality(), static_cast<double>(kFlows),
              kFlows * 0.2);
}

TEST(UnivMon, EntropyTracksTruthLoosely) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 100000;
  config.flow_count = 5000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  UnivMon univmon = UnivMon::for_memory(600'000);
  metrics::feed(univmon, trace);
  EXPECT_NEAR(univmon.estimate_entropy(), truth.entropy(), truth.entropy() * 0.25);
}

TEST(UnivMon, HeavyHittersFoundInTopHeap) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 100000;
  config.flow_count = 10000;
  config.zipf_alpha = 1.3;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  UnivMon univmon = UnivMon::for_memory(600'000);
  metrics::feed(univmon, trace);
  const std::uint64_t threshold = metrics::heavy_hitter_threshold(truth);
  const auto reported = univmon.heavy_hitters(threshold);
  const auto scores = metrics::classification_scores(
      reported, truth.heavy_hitters(threshold));
  EXPECT_GT(scores.f1, 0.8);
}

TEST(UnivMon, ForMemoryValidates) {
  EXPECT_THROW(UnivMon::for_memory(1000), std::invalid_argument);
}

TEST(UnivMon, ClearResets) {
  UnivMon univmon = UnivMon::for_memory(500'000);
  for (int i = 0; i < 100; ++i) univmon.update(flow::FlowKey{5});
  univmon.clear();
  EXPECT_EQ(univmon.query(flow::FlowKey{5}), 0u);
  EXPECT_LT(univmon.estimate_cardinality(), 1.0);
}

}  // namespace
}  // namespace fcm::sketch
