#include "flow/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "flow/synthetic.h"

namespace fcm::flow {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("fcm_trace_test_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  SyntheticTraceConfig config;
  config.packet_count = 5000;
  config.flow_count = 300;
  const Trace original = SyntheticTraceGenerator(config).generate();
  save_trace(original, path_);
  const Trace loaded = load_trace(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded.packets()[i].key, original.packets()[i].key);
    ASSERT_EQ(loaded.packets()[i].bytes, original.packets()[i].bytes);
    ASSERT_EQ(loaded.packets()[i].timestamp_ns, original.packets()[i].timestamp_ns);
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  save_trace(Trace{}, path_);
  EXPECT_TRUE(load_trace(path_).empty());
}

TEST_F(TraceIoTest, RejectsMissingFile) {
  EXPECT_THROW(load_trace("/nonexistent/fcm_trace.bin"), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsWrongMagic) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTATRACEFILE___________";
  out.close();
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsTruncatedFile) {
  SyntheticTraceConfig config;
  config.packet_count = 100;
  config.flow_count = 10;
  save_trace(SyntheticTraceGenerator(config).generate(), path_);
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) / 2);
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, EnvLoaderUnsetReturnsNullopt) {
  ::unsetenv("FCM_TRACE");
  EXPECT_FALSE(load_trace_from_env().has_value());
}

TEST_F(TraceIoTest, EnvLoaderReadsFile) {
  SyntheticTraceConfig config;
  config.packet_count = 50;
  config.flow_count = 5;
  save_trace(SyntheticTraceGenerator(config).generate(), path_);
  ::setenv("FCM_TRACE", path_.c_str(), 1);
  const auto trace = load_trace_from_env();
  ::unsetenv("FCM_TRACE");
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->size(), 50u);
}

}  // namespace
}  // namespace fcm::flow
