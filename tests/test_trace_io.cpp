#include "flow/trace_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "flow/synthetic.h"

namespace fcm::flow {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("fcm_trace_test_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  SyntheticTraceConfig config;
  config.packet_count = 5000;
  config.flow_count = 300;
  const Trace original = SyntheticTraceGenerator(config).generate();
  save_trace(original, path_);
  const Trace loaded = load_trace(path_);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded.packets()[i].key, original.packets()[i].key);
    ASSERT_EQ(loaded.packets()[i].bytes, original.packets()[i].bytes);
    ASSERT_EQ(loaded.packets()[i].timestamp_ns, original.packets()[i].timestamp_ns);
  }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  save_trace(Trace{}, path_);
  EXPECT_TRUE(load_trace(path_).empty());
}

TEST_F(TraceIoTest, RejectsMissingFile) {
  EXPECT_THROW(load_trace("/nonexistent/fcm_trace.bin"), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsWrongMagic) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTATRACEFILE___________";
  out.close();
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsTruncatedFile) {
  SyntheticTraceConfig config;
  config.packet_count = 100;
  config.flow_count = 10;
  save_trace(SyntheticTraceGenerator(config).generate(), path_);
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) / 2);
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

// --- robustness: corrupt and hostile inputs ---------------------------------
//
// load_trace must fail with a clean std::runtime_error on ANY malformed
// file — never crash, never throw bad_alloc from a hostile header, never
// hand back garbage packets.

TEST_F(TraceIoTest, RejectsZeroLengthFile) {
  std::ofstream(path_, std::ios::binary).close();
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsHeaderOnlyFile) {
  // Magic + version, then EOF before the count field.
  std::ofstream out(path_, std::ios::binary);
  out << "FCMTRACE";
  const std::uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.close();
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsHostileRecordCount) {
  // A valid header whose count field claims ~2^60 records. Before the size
  // check this turned into a multi-exabyte vector reserve.
  std::ofstream out(path_, std::ios::binary);
  out << "FCMTRACE";
  const std::uint32_t version = 1;
  const std::uint32_t reserved = 0;
  const std::uint64_t hostile_count = 1ull << 60;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  out.write(reinterpret_cast<const char*>(&hostile_count),
            sizeof(hostile_count));
  out.close();
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsCountLargerThanBody) {
  SyntheticTraceConfig config;
  config.packet_count = 64;
  config.flow_count = 8;
  save_trace(SyntheticTraceGenerator(config).generate(), path_);
  // Bump the count field (offset 16) past the actual record payload.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  const std::uint64_t lying_count = 65;
  f.seekp(16);
  f.write(reinterpret_cast<const char*>(&lying_count), sizeof(lying_count));
  f.close();
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, ToleratesTrailingGarbage) {
  // Extra bytes after the declared records are ignored (forward compat).
  SyntheticTraceConfig config;
  config.packet_count = 64;
  config.flow_count = 8;
  save_trace(SyntheticTraceGenerator(config).generate(), path_);
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  out << "future-extension-block";
  out.close();
  EXPECT_EQ(load_trace(path_).size(), 64u);
}

TEST_F(TraceIoTest, FuzzedMutationsNeverCrash) {
  // Seeded fuzz-lite: random byte flips, truncations and extensions of a
  // valid trace must either load cleanly or throw std::runtime_error.
  SyntheticTraceConfig config;
  config.packet_count = 128;
  config.flow_count = 16;
  save_trace(SyntheticTraceGenerator(config).generate(), path_);
  std::vector<char> pristine;
  {
    std::ifstream in(path_, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }

  common::Xoshiro256 rng(0xf022ed);
  for (int round = 0; round < 200; ++round) {
    std::vector<char> bytes = pristine;
    const std::uint64_t mode = rng.next_below(3);
    if (mode == 0) {
      // Flip 1-8 random bytes (header or body).
      const std::uint64_t flips = 1 + rng.next_below(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        bytes[rng.next_below(bytes.size())] ^=
            static_cast<char>(1 + rng.next_below(255));
      }
    } else if (mode == 1) {
      bytes.resize(rng.next_below(bytes.size() + 1));  // truncate
    } else {
      const std::uint64_t extra = 1 + rng.next_below(64);  // extend
      for (std::uint64_t e = 0; e < extra; ++e) {
        bytes.push_back(static_cast<char>(rng.next()));
      }
    }
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    try {
      const Trace trace = load_trace(path_);
      // Loaded fine: the mutation left a structurally valid file; the
      // record count can never exceed what the bytes can hold.
      EXPECT_LE(trace.size(), bytes.size() / 16);
    } catch (const std::runtime_error&) {
      // Clean rejection is the expected outcome for most mutations.
    }
  }
}

TEST_F(TraceIoTest, EnvLoaderUnsetReturnsNullopt) {
  ::unsetenv("FCM_TRACE");
  EXPECT_FALSE(load_trace_from_env().has_value());
}

TEST_F(TraceIoTest, EnvLoaderReadsFile) {
  SyntheticTraceConfig config;
  config.packet_count = 50;
  config.flow_count = 5;
  save_trace(SyntheticTraceGenerator(config).generate(), path_);
  ::setenv("FCM_TRACE", path_.c_str(), 1);
  const auto trace = load_trace_from_env();
  ::unsetenv("FCM_TRACE");
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->size(), 50u);
}

}  // namespace
}  // namespace fcm::flow
