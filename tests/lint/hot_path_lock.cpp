// fcm-lint-path: src/fcm/broken_hotpath.cpp
//
// Corpus: hot-path-lock / hot-path-alloc — blocking and allocating inside
// the batched hot-path entry points. The same lock outside the hot-path
// function list is clean.
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

namespace corpus {

class BrokenHotPath {
 public:
  void process_batch(std::span<const std::uint64_t> keys) {
    std::lock_guard<std::mutex> lock(mutex_);  // fcm-lint-expect: hot-path-lock
    for (const std::uint64_t key : keys) total_ += key;
  }
  void ingest(std::uint64_t key) {
    auto scratch = std::make_unique<std::uint64_t[]>(4);  // fcm-lint-expect: hot-path-alloc
    scratch[0] = key;
    total_ += scratch[0];
  }
  void observe(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mutex_);  // not a hot-path name: clean
    total_ += key;
  }

 private:
  std::mutex mutex_;
  std::uint64_t total_ = 0;
};

}  // namespace corpus
