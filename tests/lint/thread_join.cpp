// fcm-lint-path: src/runtime/broken_thread.cpp
//
// Corpus: thread-join / raw-atomic / atomic-order in the runtime layer —
// a plain std::thread (terminate on unwind), an ad-hoc atomic outside the
// sanctioned homes, and a default-seq-cst store.
#include <atomic>
#include <thread>

namespace corpus {

class BrokenWorkerPool {
 public:
  void start() {
    worker_ = std::thread([] {});  // fcm-lint-expect: thread-join
    started_.store(true);  // fcm-lint-expect: atomic-order
  }
  ~BrokenWorkerPool() {
    if (worker_.joinable()) worker_.join();
  }

 private:
  std::thread worker_;  // fcm-lint-expect: thread-join
  std::atomic<bool> started_{false};  // fcm-lint-expect: raw-atomic
};

}  // namespace corpus
