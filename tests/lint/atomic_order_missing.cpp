// fcm-lint-path: src/obs/broken_order.cpp
//
// Corpus: atomic-order — seq-cst-by-default atomic operations. The
// operator= spelling is only visible to the AST engine (regex cannot tell
// an atomic assignment from a plain one), hence the -ast expectation.
#include <atomic>
#include <cstdint>

namespace corpus {

class BrokenCounters {
 public:
  void hit() {
    hits_.fetch_add(1);  // fcm-lint-expect: atomic-order
  }
  std::uint64_t read() const {
    return hits_.load();  // fcm-lint-expect: atomic-order
  }
  void reset() {
    hits_.store(0, std::memory_order_relaxed);  // explicit order: clean
  }
  void toggle() {
    enabled_ = true;  // fcm-lint-expect-ast: atomic-order
  }

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<bool> enabled_{false};
};

}  // namespace corpus
