// fcm-lint-path: src/pisa/broken_legacy.cpp
//
// Corpus: the original rule set — narrowing-cast, rand-seeding,
// register-access (two rules on one line exercise multi-expect parsing).
#include <cstdint>
#include <cstdlib>

namespace corpus {

struct Registers {
  std::uint32_t* cells;
};

inline std::uint32_t legacy(Registers& table, std::uint64_t wide) {
  const std::uint32_t narrowed = static_cast<std::uint32_t>(wide);  // fcm-lint-expect: narrowing-cast
  const int noise = std::rand();  // fcm-lint-expect: rand-seeding
  table.cells[0] = narrowed + static_cast<std::uint32_t>(noise);  // fcm-lint-expect: narrowing-cast, register-access
  return table.cells[0];  // fcm-lint-expect: register-access
}

}  // namespace corpus
