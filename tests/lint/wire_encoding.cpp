// fcm-lint-path: src/agg/bad_codec.cpp
//
// Corpus: wire-encoding — struct dumps in the wire codec. The frames must
// be explicit little-endian byte-at-a-time (WireWriter/WireReader); a
// memcpy of counter memory or a reinterpret_cast of the buffer bakes host
// endianness and struct padding into the format. The sanctioned spellings
// (per-byte shifts) stay clean.
#include <cstdint>
#include <cstring>
#include <vector>

namespace corpus {

struct Header {
  std::uint32_t magic;
  std::uint64_t fingerprint;
};

inline void dump_header(std::vector<unsigned char>& out, const Header& h) {
  out.resize(sizeof(h));
  std::memcpy(out.data(), &h, sizeof(h));  // fcm-lint-expect: wire-encoding
}

inline Header load_header(const std::vector<unsigned char>& in) {
  return *reinterpret_cast<const Header*>(in.data());  // fcm-lint-expect: wire-encoding
}

inline void append_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  // Clean: explicit little-endian byte-at-a-time encoding.
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<unsigned char>((v >> shift) & 0xff));
  }
}

}  // namespace corpus
