// fcm-lint-path: src/common/broken_ring.cpp
//
// Corpus: acquire-release-pair — a relaxed store "publishing" a cursor that
// readers acquire-load. The acquire has no release to synchronize with, so
// slot writes before the store are not ordered for the consumer.
#include <atomic>
#include <cstdint>

namespace corpus {

class BrokenRing {
 public:
  void publish(std::uint64_t next) {
    head_.store(next, std::memory_order_relaxed);  // fcm-lint-expect: acquire-release-pair
  }
  std::uint64_t observe() const {
    return head_.load(std::memory_order_acquire);  // fcm-lint-expect: acquire-release-pair
  }

 private:
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace corpus
