// fcm-lint-path: src/runtime/broken_staging.cpp
//
// Corpus: staging-ownership — the block-staged ingest layer's ownership
// contract (DESIGN.md §13). Per-producer staging state (open blocks,
// staging buffers, round-robin cursors) must be FCM_GUARDED_BY a producer
// role, and span-ingest bodies must hand off whole blocks — per-item
// try_push is the fan-out tax the staging layer removes.
#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/thread_annotations.h"

namespace corpus {

struct Block {
  std::array<std::size_t, 64> slots{};
  std::size_t fill = 0;
};

struct ItemRing {
  bool try_push(std::size_t) { return true; }
  bool try_push_bulk(const std::size_t*, std::size_t) { return true; }
};

class BrokenHandle {
 public:
  void ingest(std::span<const std::size_t> keys) FCM_REQUIRES(role_) {
    for (std::size_t key : keys) {
      while (!ring_.try_push(key)) {  // fcm-lint-expect: staging-ownership
      }
    }
  }

  void flush() FCM_REQUIRES(role_) {
    ring_.try_push_bulk(nullptr, 0);  // fcm-lint-expect: staging-ownership
  }

  // Non-ingest helpers may still talk to item rings (e.g. control frames).
  void send_control() FCM_REQUIRES(role_) { ring_.try_push(0); }

 private:
  fcm::common::ThreadRole role_;
  ItemRing ring_;
  std::vector<Block> open_;  // fcm-lint-expect: staging-ownership
  std::size_t rr_next_ = 0;  // fcm-lint-expect: staging-ownership
  std::array<std::size_t, 64> staging_buf_{};  // fcm-lint-expect: staging-ownership
};

class CleanHandle {
 public:
  std::size_t cursor() const FCM_REQUIRES(role_) { return rr_next_; }

 private:
  fcm::common::ThreadRole role_;
  std::vector<Block> open_ FCM_GUARDED_BY(role_);
  std::size_t rr_next_ FCM_GUARDED_BY(role_) = 0;
  std::array<std::size_t, 64> staging_buf_ FCM_GUARDED_BY(role_){};
};

}  // namespace corpus
