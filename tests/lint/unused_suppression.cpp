// fcm-lint-path: src/fcm/broken_suppress.cpp
//
// Corpus: unused-suppression — stale, misspelled, and half-stale multi-rule
// markers. The sanctioned_flag line shows a suppression that IS consumed.
#include <atomic>
#include <cstdint>

namespace corpus {

// Used suppression: raw-atomic fires here and is deliberately excused.
std::atomic<int> sanctioned_flag{0};  // fcm-lint: allow(raw-atomic)

inline std::uint32_t stale(std::uint64_t v) {
  std::uint64_t kept = v;  // fcm-lint: allow(narrowing-cast) // fcm-lint-expect: unused-suppression
  // Multi-rule marker: narrowing-cast fires (and is excused); hot-path-alloc
  // does not, so its half of the marker is stale.
  return static_cast<std::uint32_t>(kept);  // fcm-lint: allow(narrowing-cast, hot-path-alloc) // fcm-lint-expect: unused-suppression
}

inline int misspelled() {
  return 7;  // fcm-lint: allow(no-such-rule) // fcm-lint-expect: unused-suppression
}

}  // namespace corpus
