// fcm-lint-path: src/common/clean_ring.cpp
//
// Corpus: a clean miniature of the SPSC publication protocol — zero
// findings expected from every rule under both engines. Guards the
// analyzer against false positives on the idioms src/ actually uses.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"

namespace corpus {

class CleanRing {
 public:
  explicit CleanRing(std::size_t capacity) : buffer_(capacity) {}

  void assume_producer() const FCM_ASSERT_CAPABILITY(producer_role_) {}

  bool offer(std::uint64_t value) FCM_REQUIRES(producer_role_) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= buffer_.size()) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= buffer_.size()) return false;
    }
    buffer_[head % buffer_.size()] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::uint64_t published() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  fcm::common::ThreadRole producer_role_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_tail_ FCM_GUARDED_BY(producer_role_) = 0;
  std::vector<std::uint64_t> buffer_;
};

}  // namespace corpus
