// fcm-lint-path: src/sketch/bad_vector_sketch.cpp
//
// Corpus: simd-confinement — intrinsics leaking out of the sanctioned AVX2
// kernel TU. Only src/fcm/fcm_kernel_avx2.cpp is compiled with -mavx2; an
// intrinsic or a __m256-family vector type anywhere else either breaks the
// build on baseline-ISA targets or compiles into an instruction that
// SIGILLs on CPUs without the extension. The clean spelling routes through
// the plain-pointer entry points simd_dispatch.h declares.
#include <cstddef>
#include <cstdint>
#include <immintrin.h>  // fcm-lint-expect: simd-confinement

#include "common/simd_dispatch.h"

namespace corpus {

inline void hash_lanes(const std::uint32_t* keys, std::uint32_t* out) {
  __m256i lanes = _mm256_loadu_si256(  // fcm-lint-expect: simd-confinement
      reinterpret_cast<const __m256i*>(keys));  // fcm-lint-expect: simd-confinement
  lanes = _mm256_add_epi32(lanes, lanes);  // fcm-lint-expect: simd-confinement
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),  // fcm-lint-expect: simd-confinement
                      lanes);
}

inline void hash_lanes_confined(const std::uint32_t* keys, std::size_t n,
                                std::uint32_t seed, std::uint32_t* out) {
  // Clean: the dispatch layer's plain-pointer entry point; the vector code
  // stays inside the kernel TU. (Callers check the active tier first.)
#if FCM_SIMD_X86
  fcm::common::simd::avx2_hash_batch_u32(keys, n, seed, out);
#else
  (void)keys;
  (void)n;
  (void)seed;
  (void)out;
#endif
}

}  // namespace corpus
