// fcm-lint-path: src/common/broken_header.h  // fcm-lint-expect: pragma-once

// Corpus: pragma-once — a header without the include guard. The finding is
// reported at line 1, where the expect marker above lives.
inline int corpus_answer() { return 42; }
