// fcm-lint-path: src/datapath/broken_parse.cpp
//
// Corpus: datapath-bounds — the raw-byte-access spellings banned in the
// capture datapath, where every length field is attacker-controlled. The
// clean block at the bottom shows the sanctioned ByteCursor idiom plus
// spellings that must NOT fire (std::memcpy outside datapath is someone
// else's rule; `cursor.data_offset()` is not `.data()`).
#include <cstdint>
#include <cstring>
#include <vector>

#include "datapath/byte_cursor.h"

namespace corpus {

struct FakeHeader {
  std::uint32_t magic;
  std::uint32_t caplen;
};

std::uint32_t read_magic_punned(const std::vector<std::byte>& buffer) {
  const auto* header =
      reinterpret_cast<const FakeHeader*>(buffer.data());  // fcm-lint-expect: datapath-bounds
  return header->magic;
}

std::uint32_t read_caplen_copied(const std::vector<std::byte>& buffer) {
  std::uint32_t caplen = 0;
  std::memcpy(&caplen, buffer.data() + 4, sizeof(caplen));  // fcm-lint-expect: datapath-bounds
  return caplen;
}

const std::byte* record_payload(const std::vector<std::byte>& buffer,
                                std::uint32_t caplen) {
  // Unchecked caplen indexing: nothing verified caplen against size().
  return &buffer.data()[caplen];  // fcm-lint-expect: datapath-bounds
}

void scrub(std::vector<std::byte>& buffer) {
  memset(buffer.data(), 0, buffer.size());  // fcm-lint-expect: datapath-bounds
}

// --- clean: the sanctioned idiom ----------------------------------------

std::uint32_t read_magic_checked(const std::vector<std::byte>& buffer) {
  fcm::datapath::ByteCursor cursor(buffer);
  return cursor.u32_le();  // throws Truncated instead of reading past end
}

std::uint64_t plain_member_named_like_data(std::uint64_t data_offset) {
  return data_offset + 4;  // identifier contains "data": must not fire
}

}  // namespace corpus
