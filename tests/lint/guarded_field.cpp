// fcm-lint-path: src/runtime/broken_guarded.cpp
//
// Corpus: guarded-field — an FCM_GUARDED_BY member read without a visible
// lock, assert, or FCM_REQUIRES declaration. The two clean accessors show
// the sanctioned patterns.
#include <cstdint>

#include "common/thread_annotations.h"

namespace corpus {

class Broken {
 public:
  void safe_increment() {
    fcm::common::MutexLock lock(mutex_);
    ++count_;
  }
  void locked_helper() FCM_REQUIRES(mutex_) { ++count_; }
  std::uint64_t racy_read() const {
    return count_;  // fcm-lint-expect: guarded-field
  }

 private:
  mutable fcm::common::Mutex mutex_;
  std::uint64_t count_ FCM_GUARDED_BY(mutex_) = 0;
};

}  // namespace corpus
