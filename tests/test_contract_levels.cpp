// Probes the FCM_CONTRACT_LEVEL ladder. tests/CMakeLists.txt compiles this
// TU three times — once per level (0 = off, 1 = throw, 2 = abort) — so each
// probe binary asserts only its own level's semantics via #if blocks.
//
// The level-0 probe is the important one: it proves contracts compile out
// completely (neither the condition nor the message expression is
// evaluated), which is what licenses FCM_REQUIRE on hot paths.
//
// The build passes the probe's level as FCM_TEST_CONTRACT_LEVEL (a distinct
// macro) because the top-level CMakeLists already defines
// FCM_CONTRACT_LEVEL globally from the cache option; redefining it on the
// command line would warn. Remap before the first include of contracts.h.
#ifdef FCM_CONTRACT_LEVEL
#undef FCM_CONTRACT_LEVEL
#endif
#define FCM_CONTRACT_LEVEL FCM_TEST_CONTRACT_LEVEL

#include "common/contracts.h"

#include <cstdint>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace {

int condition_evaluations = 0;
int message_evaluations = 0;

bool count_and_fail() {
  ++condition_evaluations;
  return false;
}

bool count_and_pass() {
  ++condition_evaluations;
  return true;
}

std::string counted_message() {
  ++message_evaluations;
  return "expensive diagnostic";
}

#if FCM_CONTRACT_LEVEL == 0

TEST(ContractLevelOff, EvaluatesNoSideEffects) {
  condition_evaluations = 0;
  message_evaluations = 0;
  FCM_REQUIRE(count_and_fail(), counted_message());
  FCM_ASSERT(count_and_fail(), counted_message());
  FCM_ENSURE(count_and_fail(), counted_message());
  EXPECT_EQ(condition_evaluations, 0);
  EXPECT_EQ(message_evaluations, 0);
  // Direct calls still work — only the macro discarded them above.
  EXPECT_FALSE(count_and_fail());
  EXPECT_EQ(condition_evaluations, 1);
  EXPECT_TRUE(count_and_pass());
  EXPECT_EQ(counted_message(), "expensive diagnostic");
  EXPECT_EQ(message_evaluations, 1);
}

TEST(ContractLevelOff, CheckedNarrowTruncatesSilently) {
  // With FCM_ASSERT compiled out, checked_narrow degrades to a plain
  // static_cast — lossy values wrap instead of failing.
  EXPECT_EQ(fcm::common::checked_narrow<std::uint8_t>(0x1FF), 0xFF);
  EXPECT_EQ(fcm::common::checked_narrow<std::uint8_t>(42), 42);
}

#elif FCM_CONTRACT_LEVEL == 1

TEST(ContractLevelThrow, ViolationThrowsContractViolation) {
  EXPECT_THROW(FCM_REQUIRE(false, "boom"), fcm::common::ContractViolation);
  EXPECT_THROW(FCM_ASSERT(false, "boom"), fcm::common::ContractViolation);
  EXPECT_THROW(FCM_ENSURE(false, "boom"), fcm::common::ContractViolation);
}

TEST(ContractLevelThrow, WhatCarriesKindAndMessage) {
  try {
    FCM_REQUIRE(2 + 2 == 5, "arithmetic still works");
    FAIL() << "FCM_REQUIRE(false) did not throw";
  } catch (const fcm::common::ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "REQUIRE");
    const std::string what = e.what();
    EXPECT_NE(what.find("contract violation [REQUIRE]"), std::string::npos);
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("arithmetic still works"), std::string::npos);
  }
}

TEST(ContractLevelThrow, CatchableAsInvalidArgument) {
  // Pre-existing callers catch std::invalid_argument / std::logic_error.
  EXPECT_THROW(FCM_REQUIRE(false, "compat"), std::invalid_argument);
  EXPECT_THROW(FCM_ASSERT(false, "compat"), std::logic_error);
}

TEST(ContractLevelThrow, PassingConditionEvaluatesOnceMessageNever) {
  condition_evaluations = 0;
  message_evaluations = 0;
  FCM_REQUIRE(count_and_pass(), counted_message());
  EXPECT_EQ(condition_evaluations, 1);
  EXPECT_EQ(message_evaluations, 0);
  EXPECT_THROW(FCM_REQUIRE(count_and_fail(), counted_message()),
               fcm::common::ContractViolation);
  EXPECT_EQ(condition_evaluations, 2);
  EXPECT_EQ(message_evaluations, 1);
}

TEST(ContractLevelThrow, CheckedNarrowEnforced) {
  EXPECT_EQ(fcm::common::checked_narrow<std::uint8_t>(42), 42);
  EXPECT_THROW(fcm::common::checked_narrow<std::uint8_t>(0x1FF),
               fcm::common::ContractViolation);
  EXPECT_THROW(fcm::common::checked_narrow<std::uint8_t>(-1),
               fcm::common::ContractViolation);
}

#else  // FCM_CONTRACT_LEVEL == 2

TEST(ContractLevelAbortDeathTest, ViolationAborts) {
  EXPECT_DEATH(FCM_REQUIRE(false, "boom"), "contract violation \\[REQUIRE\\]");
  EXPECT_DEATH(FCM_ASSERT(false, "boom"), "contract violation \\[ASSERT\\]");
  EXPECT_DEATH(FCM_ENSURE(false, "boom"), "contract violation \\[ENSURE\\]");
}

TEST(ContractLevelAbortDeathTest, CheckedNarrowAborts) {
  EXPECT_DEATH((void)fcm::common::checked_narrow<std::uint8_t>(0x1FF),
               "narrowing conversion lost value");
}

TEST(ContractLevelAbort, PassingConditionDoesNotAbort) {
  condition_evaluations = 0;
  FCM_REQUIRE(count_and_pass(), counted_message());
  EXPECT_EQ(condition_evaluations, 1);
  EXPECT_FALSE(count_and_fail());
  EXPECT_EQ(condition_evaluations, 2);
  EXPECT_EQ(fcm::common::checked_narrow<std::uint8_t>(42), 42);
}

#endif

}  // namespace
