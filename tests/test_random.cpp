#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace fcm::common {
namespace {

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(1);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, NextBelowUnbiasedSmoke) {
  Xoshiro256 rng(11);
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 70000; ++i) ++histogram[rng.next_below(7)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, 10000, 600);
  }
}

TEST(ZipfSampler, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  const ZipfSampler zipf(1000, 1.2);
  double total = 0.0;
  for (std::size_t r = 1; r <= 1000; ++r) total += zipf.probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, ProbabilityMonotoneDecreasing) {
  const ZipfSampler zipf(500, 1.1);
  for (std::size_t r = 2; r <= 500; ++r) {
    EXPECT_LE(zipf.probability(r), zipf.probability(r - 1) + 1e-15);
  }
}

TEST(ZipfSampler, ProbabilityRejectsOutOfRange) {
  const ZipfSampler zipf(10, 1.0);
  EXPECT_THROW(zipf.probability(0), std::out_of_range);
  EXPECT_THROW(zipf.probability(11), std::out_of_range);
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  const ZipfSampler zipf(100, 0.0);
  for (std::size_t r = 1; r <= 100; ++r) {
    EXPECT_NEAR(zipf.probability(r), 0.01, 1e-12);
  }
}

class ZipfSamplingTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplingTest, EmpiricalMatchesTheoreticalTopRank) {
  const double alpha = GetParam();
  const ZipfSampler zipf(2000, alpha);
  Xoshiro256 rng(42);
  constexpr int kSamples = 200000;
  int rank1 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.sample(rng) == 1) ++rank1;
  }
  const double expected = zipf.probability(1);
  EXPECT_NEAR(static_cast<double>(rank1) / kSamples, expected, 0.01);
}

TEST_P(ZipfSamplingTest, SamplesWithinRange) {
  const ZipfSampler zipf(64, GetParam());
  Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t rank = zipf.sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 64u);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfSamplingTest,
                         ::testing::Values(0.5, 1.0, 1.1, 1.3, 1.5, 1.7));

}  // namespace
}  // namespace fcm::common
