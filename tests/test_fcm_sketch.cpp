#include "fcm/fcm_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flow/synthetic.h"

namespace fcm::core {
namespace {

FcmConfig small_config(std::uint64_t seed = 0xabc) {
  FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 8 * 8 * 64;  // 4096 leaves
  config.seed = seed;
  return config;
}

TEST(FcmSketch, SingleFlowExact) {
  FcmSketch sketch(small_config());
  const flow::FlowKey key{77};
  for (int i = 1; i <= 1000; ++i) {
    EXPECT_EQ(sketch.update(key), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(sketch.query(key), 1000u);
}

TEST(FcmSketch, QueryIsMinOverTrees) {
  FcmSketch sketch(small_config());
  sketch.add(flow::FlowKey{5}, 10);
  const std::uint64_t q = sketch.query(flow::FlowKey{5});
  for (std::size_t t = 0; t < sketch.tree_count(); ++t) {
    EXPECT_LE(q, sketch.tree(t).query(flow::FlowKey{5}));
  }
  EXPECT_EQ(q, 10u);
}

TEST(FcmSketch, UnknownKeyUsuallyZeroOnEmptySketch) {
  FcmSketch sketch(small_config());
  EXPECT_EQ(sketch.query(flow::FlowKey{123456}), 0u);
}

class FcmSketchPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FcmSketchPropertyTest, NeverUnderestimates) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 200000;
  trace_config.flow_count = 20000;
  trace_config.seed = GetParam();
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  const flow::GroundTruth truth(trace);

  FcmSketch sketch(small_config(GetParam()));
  for (const flow::Packet& p : trace.packets()) sketch.update(p.key);

  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(sketch.query(key), size);
  }
}

TEST_P(FcmSketchPropertyTest, CardinalityWithinFivePercent) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 100000;
  trace_config.flow_count = 2000;
  trace_config.seed = GetParam();
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  const flow::GroundTruth truth(trace);

  FcmSketch sketch(small_config(GetParam() + 1));
  for (const flow::Packet& p : trace.packets()) sketch.update(p.key);

  const double estimate = sketch.estimate_cardinality();
  const double truth_count = static_cast<double>(truth.flow_count());
  EXPECT_NEAR(estimate, truth_count, truth_count * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FcmSketchPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(FcmSketch, HeavyHitterDetectionOnUpdatePath) {
  FcmSketch sketch(small_config());
  sketch.set_heavy_hitter_threshold(100);
  for (int i = 0; i < 150; ++i) sketch.update(flow::FlowKey{1});
  for (int i = 0; i < 50; ++i) sketch.update(flow::FlowKey{2});
  EXPECT_TRUE(sketch.heavy_hitters().contains(flow::FlowKey{1}));
  EXPECT_FALSE(sketch.heavy_hitters().contains(flow::FlowKey{2}));
}

TEST(FcmSketch, EmptyCardinalityIsNearZero) {
  FcmSketch sketch(small_config());
  EXPECT_NEAR(sketch.estimate_cardinality(), 0.0, 1e-9);
}

TEST(FcmSketch, SaturatedLeavesStillEstimable) {
  // Fill every leaf: linear counting falls back to its saturated guard
  // rather than dividing by zero.
  FcmConfig config = small_config();
  config.leaf_count = 64;
  config.tree_count = 1;
  FcmSketch sketch(config);
  for (std::uint32_t i = 0; i < 5000; ++i) sketch.update(flow::FlowKey{i + 1});
  EXPECT_TRUE(std::isfinite(sketch.estimate_cardinality()));
  EXPECT_GT(sketch.estimate_cardinality(), 64.0);
}

TEST(FcmSketch, ClearResets) {
  FcmSketch sketch(small_config());
  sketch.set_heavy_hitter_threshold(5);
  sketch.add(flow::FlowKey{9}, 10);
  sketch.clear();
  EXPECT_EQ(sketch.query(flow::FlowKey{9}), 0u);
  EXPECT_TRUE(sketch.heavy_hitters().empty());
  EXPECT_NEAR(sketch.estimate_cardinality(), 0.0, 1e-9);
}

TEST(FcmSketch, MemoryBytesMatchesConfig) {
  const FcmConfig config = small_config();
  EXPECT_EQ(FcmSketch(config).memory_bytes(), config.memory_bytes());
}

TEST(FcmSketch, MoreTreesNeverWorseOnCollisions) {
  // With d trees, the estimate is the min over d; adding trees can only
  // tighten per-flow estimates (on identical traffic and seeds).
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 100000;
  trace_config.flow_count = 30000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  const flow::GroundTruth truth(trace);

  FcmConfig one_tree = small_config();
  one_tree.tree_count = 1;
  FcmConfig two_trees = small_config();
  two_trees.tree_count = 2;

  FcmSketch sketch1(one_tree);
  FcmSketch sketch2(two_trees);
  for (const flow::Packet& p : trace.packets()) {
    sketch1.update(p.key);
    sketch2.update(p.key);
  }
  // Tree 0 is identical in both (same seed derivation), so the min over two
  // trees is pointwise <= the single-tree estimate.
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_LE(sketch2.query(key), sketch1.query(key));
  }
}

}  // namespace
}  // namespace fcm::core
