// Unit and concurrency tests for the observability layer (DESIGN.md §8).
//
// The concurrency suites are the acceptance gate for scrape-while-ingest:
// CI's FCM_SANITIZE=thread job runs this binary, so every snapshot() racing
// hot relaxed-atomic writers is exercised under TSan.
#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "flow/synthetic.h"
#include "obs/metrics_logger.h"
#include "runtime/sharded_framework.h"

namespace fcm::obs {
namespace {

// --- Counter -----------------------------------------------------------------

TEST(Counter, SumsAcrossStripes) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("events_total");
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  // Explicit stripes land in distinct cells but one logical value.
  for (std::size_t stripe = 0; stripe < kMetricStripes; ++stripe) {
    counter.inc_at(stripe, 1);
  }
  EXPECT_EQ(counter.value(), 42u + kMetricStripes);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, StripeIndexWrapsModuloStripes) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("wrap_total");
  counter.inc_at(kMetricStripes + 3, 5);  // same cell as stripe 3
  counter.inc_at(3, 5);
  EXPECT_EQ(counter.value(), 10u);
}

// --- Gauge -------------------------------------------------------------------

TEST(Gauge, SetAddValue) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("depth");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_EQ(gauge.value(), 1.5);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketsObservationsAtUpperEdges) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (upper edge inclusive)
  h.observe(7.0);    // <= 10
  h.observe(1000.0); // +Inf
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 1000.0);
}

TEST(Histogram, ExponentialBoundsLadder) {
  const std::vector<double> bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  EXPECT_THROW(Histogram::exponential_bounds(0.0, 2.0, 4), std::logic_error);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 2.0, 0), std::logic_error);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("bad", {1.0, 1.0}), std::logic_error);
  EXPECT_THROW(registry.histogram("bad2", {2.0, 1.0}), std::logic_error);
}

// --- Registry ----------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("hits_total", {{"shard", "0"}});
  Counter& b = registry.counter("hits_total", {{"shard", "0"}});
  Counter& c = registry.counter("hits_total", {{"shard", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x", {1.0}), std::logic_error);
}

TEST(Registry, ResetValuesZeroesEverySeries) {
  MetricsRegistry registry;
  registry.counter("c").inc(9);
  registry.gauge("g").set(3.0);
  registry.histogram("h", {1.0}).observe(0.5);
  registry.reset_values();
  EXPECT_EQ(registry.counter("c").value(), 0u);
  EXPECT_EQ(registry.gauge("g").value(), 0.0);
  EXPECT_EQ(registry.histogram("h", {1.0}).count(), 0u);
}

TEST(Registry, CallbackGaugeLifecycle) {
  MetricsRegistry registry;
  double depth = 7.0;
  {
    const auto handle =
        registry.gauge_callback("queue_depth", {}, [&] { return depth; });
    // Registering a plain gauge over a live callback is a logic error.
    EXPECT_THROW(registry.gauge("queue_depth"), std::logic_error);
    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.samples.size(), 1u);
    EXPECT_EQ(snap.samples[0].value, 7.0);
  }
  // Handle released: the series is skipped, and the name is reusable.
  EXPECT_TRUE(registry.snapshot().samples.empty());
  const auto handle =
      registry.gauge_callback("queue_depth", {}, [] { return 1.0; });
  ASSERT_EQ(registry.snapshot().samples.size(), 1u);
}

TEST(Registry, SnapshotRendersJsonAndPrometheus) {
  MetricsRegistry registry;
  registry.counter("req_total", {{"code", "200"}}, "requests").inc(3);
  registry.histogram("lat_seconds", {0.1, 1.0}, {}, "latency").observe(0.05);
  const MetricsSnapshot snap = registry.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"schema\": \"fcm.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"req_total\""), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"200\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# HELP req_total requests"), std::string::npos);
  EXPECT_NE(prom.find("req_total{code=\"200\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_bucket{le=\"0.1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_seconds_count 1"), std::string::npos);
}

TEST(Registry, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("esc_total", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string prom = registry.snapshot().to_prometheus();
  // Backslash, double-quote and newline must be escaped per the text
  // exposition format or the line is unparseable.
  EXPECT_NE(prom.find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

TEST(Registry, NonFiniteValuesRenderVisibly) {
  // A pathological callback gauge must stay distinguishable from a
  // legitimate zero in scraped data: null in JSON, NaN/Inf in Prometheus.
  MetricsRegistry registry;
  const auto nan_handle = registry.gauge_callback(
      "bad_gauge", {}, [] { return std::numeric_limits<double>::quiet_NaN(); });
  const auto inf_handle = registry.gauge_callback(
      "inf_gauge", {}, [] { return std::numeric_limits<double>::infinity(); });
  const MetricsSnapshot snap = registry.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"value\": null"), std::string::npos);
  EXPECT_EQ(json.find("1e308"), std::string::npos);
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("bad_gauge NaN"), std::string::npos);
  EXPECT_NE(prom.find("inf_gauge +Inf"), std::string::npos);
}

TEST(Registry, ScopedTimerObservesOnceAndToleratesNull) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t_seconds", Histogram::latency_bounds());
  {
    const ScopedTimer timer(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  {
    const ScopedTimer timer(nullptr);  // must be a no-op
  }
  EXPECT_EQ(h.count(), 1u);
}

// --- MetricsLogger -----------------------------------------------------------

TEST(MetricsLogger, WritesJsonLinesAndStopsPromptly) {
  const std::string path = ::testing::TempDir() + "obs_logger.jsonl";
  std::remove(path.c_str());
  MetricsRegistry registry;
  registry.counter("ticks_total").inc(5);
  {
    MetricsLogger::Options options;
    options.path = path;
    options.interval = std::chrono::milliseconds(5);
    MetricsLogger logger(registry, options);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    logger.stop();
    logger.stop();  // idempotent
    EXPECT_GE(logger.snapshots_written(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_NE(line.find("fcm.metrics.v1"), std::string::npos);
    EXPECT_NE(line.find("ticks_total"), std::string::npos);
  }
  EXPECT_GE(lines, 1u);
  std::remove(path.c_str());
}

// --- scrape-while-ingest (the TSan gate) -------------------------------------

TEST(Concurrency, SnapshotWhileWritersAreHot) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hot_total");
  Gauge& gauge = registry.gauge("hot_gauge");
  Histogram& histogram = registry.histogram("hot_seconds", {1e-3, 1e-2, 1e-1});

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  std::vector<std::jthread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        counter.inc_at(static_cast<std::size_t>(w));
        gauge.set(static_cast<double>(i));
        histogram.observe(static_cast<double>(i % 100) * 1e-3);
      }
    });
  }
  // Scrape continuously while the writers hammer the series.
  std::uint64_t last_counter = 0;
  for (int s = 0; s < 200; ++s) {
    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.samples.size(), 3u);
    for (const auto& sample : snap.samples) {
      if (sample.name == "hot_total") {
        const auto value = static_cast<std::uint64_t>(sample.value);
        EXPECT_GE(value, last_counter) << "counter went backwards";
        last_counter = value;
      }
    }
  }
  writers.clear();  // join
  EXPECT_EQ(counter.value(), kWriters * kPerWriter);
  EXPECT_EQ(histogram.count(), kWriters * kPerWriter);
}

TEST(Concurrency, ShardedIngestScrapedConcurrently) {
  // The end-to-end gate: a sharded runtime instrumented against a local
  // registry, scraped from another thread mid-ingest.
  MetricsRegistry registry;

  flow::SyntheticTraceConfig config;
  config.packet_count = 1 << 16;
  config.flow_count = 4'000;
  config.seed = 99;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();

  runtime::ShardedFcmFramework::Options options;
  options.framework.fcm = core::FcmConfig::for_memory(64 * 1024, 2, 8, {8, 16, 32});
  options.shard_count = 2;
  options.metrics = &registry;
  options.metrics_instance = "test";
  runtime::ShardedFcmFramework sharded(options);
  ASSERT_TRUE(sharded.metrics_enabled());

  std::jthread scraper([&](const std::stop_token& token) {
    while (!token.stop_requested()) {
      const MetricsSnapshot snap = registry.snapshot();
      EXPECT_GE(snap.samples.size(), 5u);
    }
  });

  for (const flow::Packet& packet : trace.packets()) {
    sharded.ingest(packet.key);
  }
  const auto report = sharded.rotate();
  scraper.request_stop();
  scraper = {};  // join before the framework (and its gauges) go away

  EXPECT_EQ(report.packets, trace.size());
  // Every packet must be attributed to exactly one shard counter.
  std::uint64_t shard_packets = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    shard_packets +=
        registry
            .counter("fcm_runtime_shard_packets_total",
                     {{"instance", "test"}, {"shard", std::to_string(s)}})
            .value();
  }
  EXPECT_EQ(shard_packets, trace.size());
  EXPECT_GE(
      registry.counter("fcm_runtime_epochs_merged_total", {{"instance", "test"}})
          .value(),
      1u);
  EXPECT_GE(registry
                .histogram("fcm_runtime_merge_seconds",
                           Histogram::latency_bounds(), {{"instance", "test"}})
                .count(),
            1u);
}

TEST(Concurrency, RegistrationRacesSnapshotSafely) {
  // Regression: registration (including construction of the value object)
  // must be one critical section — a scrape racing the FIRST registration
  // of a series used to dereference a not-yet-constructed Counter.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kRounds = 500;
  std::vector<std::jthread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        registry.counter("race_total", {{"i", std::to_string(i % 8)}}).inc();
        registry
            .histogram("race_seconds", {1.0}, {{"i", std::to_string(i % 8)}})
            .observe(0.5);
      }
    });
  }
  for (int s = 0; s < 200; ++s) {
    const MetricsSnapshot snap = registry.snapshot();
    for (const auto& sample : snap.samples) {
      EXPECT_FALSE(sample.name.empty());
    }
  }
  writers.clear();  // join
  std::uint64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    total += registry.counter("race_total", {{"i", std::to_string(i)}}).value();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kRounds);
}

TEST(Registry, ConfiguredRegistryThreadedThroughAnalyze) {
  // FcmFramework::Options::metrics is the single knob: analyze() and the EM
  // estimator it spawns must write to the configured registry, not the
  // global singleton.
  MetricsRegistry local;
  framework::FcmFramework::Options options;
  options.fcm = core::FcmConfig::for_memory(32 * 1024, 2, 8, {8, 16, 32});
  options.em.max_iterations = 2;
  options.metrics = &local;
  framework::FcmFramework fw(options);
  for (std::uint32_t i = 0; i < 2'000; ++i) fw.process(flow::FlowKey{i % 50});
  (void)fw.analyze();
  EXPECT_GE(local.counter("fcm_framework_analyze_total").value(), 1u);
  EXPECT_GE(local.counter("fcm_em_runs_total").value(), 1u);
  EXPECT_GE(local.counter("fcm_em_iterations_total").value(), 2u);
}

TEST(Registry, NullMetricsIsFullyUninstrumented) {
  // Regression: metrics == nullptr must not fall back to the global
  // registry anywhere in the pipeline — including analyze_on_rotate's EM
  // run in the sharded runtime (the overhead baseline depends on it).
  const std::size_t global_before = MetricsRegistry::global().series_count();

  framework::FcmFramework::Options fw_options;
  fw_options.fcm = core::FcmConfig::for_memory(32 * 1024, 2, 8, {8, 16, 32});
  fw_options.em.max_iterations = 2;
  fw_options.metrics = nullptr;
  framework::FcmFramework fw(fw_options);
  for (std::uint32_t i = 0; i < 2'000; ++i) fw.process(flow::FlowKey{i % 50});
  (void)fw.analyze();
  EXPECT_EQ(MetricsRegistry::global().series_count(), global_before);

  runtime::ShardedFcmFramework::Options options;
  options.framework = fw_options;
  options.shard_count = 2;
  options.metrics = nullptr;
  options.analyze_on_rotate = true;
  runtime::ShardedFcmFramework sharded(options);
  EXPECT_FALSE(sharded.metrics_enabled());
  for (std::uint32_t i = 0; i < 2'000; ++i) sharded.ingest(flow::FlowKey{i % 50});
  const auto report = sharded.rotate();
  EXPECT_TRUE(report.analysis.has_value());
  EXPECT_EQ(MetricsRegistry::global().series_count(), global_before);
}

TEST(Concurrency, SequentialInstrumentedInstancesReuseQueueGauges) {
  // Non-overlapping instances must be able to re-register the same
  // callback-gauge series (handles release on destruction).
  MetricsRegistry registry;
  for (int round = 0; round < 2; ++round) {
    runtime::ShardedFcmFramework::Options options;
    options.framework.fcm =
        core::FcmConfig::for_memory(32 * 1024, 2, 8, {8, 16, 32});
    options.shard_count = 2;
    options.metrics = &registry;
    runtime::ShardedFcmFramework sharded(options);
    sharded.ingest(flow::FlowKey{7});
    sharded.rotate();
  }
  SUCCEED();
}

}  // namespace
}  // namespace fcm::obs
