// Merge semantics (DESIGN.md §7): counter-sum with overflow promotion.
//
// The headline guarantee of the sharded runtime rests on these properties:
//   - FcmTree/FcmSketch/CmSketch merges are BIT-EXACT: the merged state
//     equals the state one structure would hold after absorbing all shards'
//     streams (checked node-for-node and query-for-query, N in {1,2,4,8});
//   - merge is an identity w.r.t. an empty sketch, commutative, and
//     associative on random traces;
//   - mismatched configurations are rejected via FCM_REQUIRE;
//   - heavy-hitter sets are unioned, deduped, and re-qualified against the
//     merged counters, including flows that cross the threshold only after
//     merging (the ceil(T/N) per-shard threshold scheme).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/contracts.h"
#include "fcm/fcm_sketch.h"
#include "fcm/fcm_topk.h"
#include "flow/synthetic.h"
#include "sketch/cm_sketch.h"

namespace fcm {
namespace {

using core::FcmConfig;
using core::FcmSketch;
using core::FcmTopK;
using core::FcmTree;
using flow::FlowKey;
using flow::Trace;

// A small geometry whose 4-bit leaves (cap 14) and 8-bit mid stage (cap 254)
// overflow readily, exercising promotion through every level incl. the root.
FcmConfig tiny_config() {
  FcmConfig config;
  config.tree_count = 2;
  config.k = 4;
  config.stage_bits = {4, 8, 16};
  config.leaf_count = 256;
  config.seed = 0xfeedbeef;
  return config;
}

// A realistically-shaped (scaled-down) sketch for the trace-driven tests.
FcmConfig small_config() {
  FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 4096;
  config.seed = 0x5555aaaa;
  return config;
}

Trace fixed_trace(std::uint64_t seed, std::uint64_t packets = 60'000,
                  std::uint64_t flows = 3'000) {
  flow::SyntheticTraceConfig config;
  config.packet_count = packets;
  config.flow_count = flows;
  config.seed = seed;
  Trace trace = flow::SyntheticTraceGenerator(config).generate();
  // One jumbo flow that overflows the 16-bit mid stage (65534) so counts
  // promote into the 32-bit root even in the small geometry.
  for (int i = 0; i < 70'000; ++i) {
    trace.append(flow::Packet{FlowKey{0x0a0a0a0a}, 64, 0});
  }
  return trace;
}

std::vector<FlowKey> distinct_keys(const Trace& trace) {
  std::unordered_set<FlowKey> seen;
  for (const auto& packet : trace.packets()) seen.insert(packet.key);
  return {seen.begin(), seen.end()};
}

void expect_same_tree_state(const FcmTree& a, const FcmTree& b) {
  ASSERT_EQ(a.config().stage_count(), b.config().stage_count());
  for (std::size_t l = 1; l <= a.config().stage_count(); ++l) {
    const auto sa = a.stage(l);
    const auto sb = b.stage(l);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i]) << "stage " << l << " node " << i;
    }
  }
}

void expect_same_sketch_state(const FcmSketch& a, const FcmSketch& b) {
  ASSERT_EQ(a.tree_count(), b.tree_count());
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    expect_same_tree_state(a.tree(t), b.tree(t));
  }
}

// Splits `trace` round-robin into `n` shards — the worst case for merging:
// every flow is split across every shard.
std::vector<Trace> split_round_robin(const Trace& trace, std::size_t n) {
  std::vector<Trace> shards(n);
  std::size_t next = 0;
  for (const auto& packet : trace.packets()) {
    shards[next].append(packet);
    next = next + 1 == n ? 0 : next + 1;
  }
  return shards;
}

// --- tree-level bit-exactness ----------------------------------------------

TEST(FcmTreeMerge, BitExactVersusSerialThroughAllLevels) {
  const FcmConfig config = tiny_config();
  const auto hash = common::make_hash(config.seed, 0);
  FcmTree serial(config, hash);
  FcmTree shard_a(config, hash);
  FcmTree shard_b(config, hash);

  // 400 flows with linearly growing sizes: many leaves overflow (cap 14),
  // several mid-stage nodes overflow (cap 254); plus one flow large enough
  // to overflow even the 16-bit root (cap 65534) — the serial tree drops the
  // excess there, and the merged tree must drop it identically.
  for (std::uint32_t f = 1; f <= 400; ++f) {
    const std::uint64_t count = f;
    const std::uint64_t half = count / 2;
    serial.add(FlowKey{f}, count);
    if (half > 0) shard_a.add(FlowKey{f}, half);
    shard_b.add(FlowKey{f}, count - half);
  }
  serial.add(FlowKey{42'000'000}, 70'000);
  shard_a.add(FlowKey{42'000'000}, 35'000);
  shard_b.add(FlowKey{42'000'000}, 35'000);

  shard_a.merge(shard_b);
  expect_same_tree_state(shard_a, serial);
  shard_a.check_invariants();

  for (std::uint32_t f = 1; f <= 400; ++f) {
    EXPECT_EQ(shard_a.query(FlowKey{f}), serial.query(FlowKey{f}));
  }
  EXPECT_EQ(shard_a.query(FlowKey{42'000'000}), serial.query(FlowKey{42'000'000}));
  EXPECT_EQ(shard_a.total_count(), serial.total_count());
  EXPECT_EQ(shard_a.empty_leaf_count(), serial.empty_leaf_count());
}

TEST(FcmTreeMerge, RejectsMismatchedGeometryAndHash) {
  const FcmConfig config = tiny_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));

  FcmConfig other = config;
  other.leaf_count = config.leaf_count * 4;
  FcmTree wrong_geometry(other, common::make_hash(other.seed, 0));
  EXPECT_THROW(tree.merge(wrong_geometry), common::ContractViolation);

  FcmTree wrong_hash(config, common::make_hash(config.seed, 1));
  EXPECT_THROW(tree.merge(wrong_hash), common::ContractViolation);
}

// --- sketch-level: the acceptance criterion --------------------------------

// Merged N-shard count queries are bit-exact equal to the serial sketch on a
// fixed-seed synthetic trace for N in {1, 2, 4, 8}.
TEST(FcmSketchMerge, MergedShardsBitExactVersusSerial) {
  const Trace trace = fixed_trace(7);
  const std::vector<FlowKey> keys = distinct_keys(trace);

  FcmSketch serial(small_config());
  for (const auto& packet : trace.packets()) serial.update(packet.key);

  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    std::vector<FcmSketch> shards;
    for (std::size_t s = 0; s < n; ++s) shards.emplace_back(small_config());
    std::size_t next = 0;
    for (const auto& packet : trace.packets()) {
      shards[next].update(packet.key);
      next = next + 1 == n ? 0 : next + 1;
    }
    FcmSketch merged = shards[0];
    for (std::size_t s = 1; s < n; ++s) merged.merge(shards[s]);

    SCOPED_TRACE("N = " + std::to_string(n));
    expect_same_sketch_state(merged, serial);
    merged.check_invariants();
    for (const FlowKey key : keys) {
      ASSERT_EQ(merged.query(key), serial.query(key));
    }
    // Absent keys agree too (state equality implies it; spot-check anyway).
    EXPECT_EQ(merged.query(FlowKey{0xdeadbeef}), serial.query(FlowKey{0xdeadbeef}));
    EXPECT_DOUBLE_EQ(merged.estimate_cardinality(), serial.estimate_cardinality());
  }
}

TEST(FcmSketchMerge, EmptyIsAnIdentity) {
  const Trace trace = fixed_trace(11, 20'000, 1'500);

  FcmSketch loaded(small_config());
  for (const auto& packet : trace.packets()) loaded.update(packet.key);
  const FcmSketch reference = loaded;

  FcmSketch empty(small_config());
  loaded.merge(empty);  // right identity
  expect_same_sketch_state(loaded, reference);

  FcmSketch empty_left(small_config());
  empty_left.merge(reference);  // left identity
  expect_same_sketch_state(empty_left, reference);
}

TEST(FcmSketchMerge, CommutativeOnRandomTraces) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    const Trace trace = fixed_trace(seed, 30'000, 2'000);
    auto halves = split_round_robin(trace, 2);

    FcmSketch a(small_config());
    FcmSketch b(small_config());
    for (const auto& p : halves[0].packets()) a.update(p.key);
    for (const auto& p : halves[1].packets()) b.update(p.key);

    FcmSketch ab = a;
    ab.merge(b);
    FcmSketch ba = b;
    ba.merge(a);
    SCOPED_TRACE("seed = " + std::to_string(seed));
    expect_same_sketch_state(ab, ba);
  }
}

TEST(FcmSketchMerge, AssociativeOnRandomTraces) {
  for (const std::uint64_t seed : {5u, 23u, 77u}) {
    const Trace trace = fixed_trace(seed, 30'000, 2'000);
    auto thirds = split_round_robin(trace, 3);

    std::vector<FcmSketch> shards;
    for (std::size_t s = 0; s < 3; ++s) {
      shards.emplace_back(small_config());
      for (const auto& p : thirds[s].packets()) shards[s].update(p.key);
    }

    FcmSketch left = shards[0];  // (A ∪ B) ∪ C
    left.merge(shards[1]);
    left.merge(shards[2]);

    FcmSketch bc = shards[1];  // A ∪ (B ∪ C)
    bc.merge(shards[2]);
    FcmSketch right = shards[0];
    right.merge(bc);

    SCOPED_TRACE("seed = " + std::to_string(seed));
    expect_same_sketch_state(left, right);
  }
}

TEST(FcmSketchMerge, RejectsMismatchedConfigs) {
  FcmSketch sketch(small_config());

  FcmConfig different_width = small_config();
  different_width.leaf_count *= 8;
  EXPECT_THROW(sketch.merge(FcmSketch(different_width)),
               common::ContractViolation);

  FcmConfig different_seed = small_config();
  different_seed.seed ^= 1;
  EXPECT_THROW(sketch.merge(FcmSketch(different_seed)),
               common::ContractViolation);

  FcmConfig different_trees = small_config();
  different_trees.tree_count = 3;
  EXPECT_THROW(sketch.merge(FcmSketch(different_trees)),
               common::ContractViolation);

  FcmConfig different_stages = small_config();
  different_stages.stage_bits = {8, 16, 24};
  EXPECT_THROW(sketch.merge(FcmSketch(different_stages)),
               common::ContractViolation);

  // Mismatched heavy-hitter thresholds are a semantic mismatch too.
  FcmSketch with_threshold(small_config());
  with_threshold.set_heavy_hitter_threshold(100);
  EXPECT_THROW(sketch.merge(with_threshold), common::ContractViolation);
}

// --- heavy-hitter semantics under merge ------------------------------------

// Regression for the sharded runtime's detection scheme: a flow split across
// shards crosses the global threshold T only after merging. Shards record at
// ceil(T/N); after the merge the union is re-qualified at T — the split flow
// is kept, and a per-shard candidate below T globally is dropped.
TEST(FcmSketchMerge, FlowCrossesThresholdOnlyAfterMerging) {
  constexpr std::uint64_t kGlobalThreshold = 100;
  constexpr std::uint64_t kPerShardThreshold = 50;  // ceil(100 / 2)

  FcmSketch shard_a(small_config());
  FcmSketch shard_b(small_config());
  shard_a.set_heavy_hitter_threshold(kPerShardThreshold);
  shard_b.set_heavy_hitter_threshold(kPerShardThreshold);

  const FlowKey split_flow{0x01010101};   // 60 + 60 = 120 >= T, but 60 < T
  const FlowKey local_flow{0x02020202};   // 60 packets in one shard only
  const FlowKey small_flow{0x03030303};   // 30 + 30: below even ceil(T/N)
  for (int i = 0; i < 60; ++i) shard_a.update(split_flow);
  for (int i = 0; i < 60; ++i) shard_b.update(split_flow);
  for (int i = 0; i < 60; ++i) shard_a.update(local_flow);
  for (int i = 0; i < 30; ++i) shard_a.update(small_flow);
  for (int i = 0; i < 30; ++i) shard_b.update(small_flow);

  // Neither shard alone can certify the split flow at the global threshold…
  EXPECT_LT(shard_a.query(split_flow), kGlobalThreshold);
  EXPECT_LT(shard_b.query(split_flow), kGlobalThreshold);
  // …but both record it as a ceil(T/N) candidate.
  EXPECT_TRUE(shard_a.heavy_hitters().contains(split_flow));
  EXPECT_TRUE(shard_b.heavy_hitters().contains(split_flow));
  EXPECT_TRUE(shard_a.heavy_hitters().contains(local_flow));
  EXPECT_FALSE(shard_a.heavy_hitters().contains(small_flow));

  FcmSketch merged = shard_a;
  merged.merge(shard_b);
  merged.requalify_heavy_hitters(kGlobalThreshold);

  EXPECT_TRUE(merged.heavy_hitters().contains(split_flow))
      << "flow crossing the threshold only after merging must be kept";
  EXPECT_FALSE(merged.heavy_hitters().contains(local_flow))
      << "per-shard candidate below the global threshold must be dropped";
  EXPECT_FALSE(merged.heavy_hitters().contains(small_flow));
  EXPECT_EQ(merged.query(split_flow), 120u);
}

TEST(FcmSketchMerge, UnionIsDedupedAndRequalifiedAgainstMergedCounters) {
  FcmSketch shard_a(small_config());
  FcmSketch shard_b(small_config());
  shard_a.set_heavy_hitter_threshold(40);
  shard_b.set_heavy_hitter_threshold(40);

  const FlowKey both{0x11111111};
  for (int i = 0; i < 50; ++i) shard_a.update(both);
  for (int i = 0; i < 50; ++i) shard_b.update(both);

  FcmSketch merged = shard_a;
  merged.merge(shard_b);
  // Recorded by both shards; the union holds it exactly once.
  EXPECT_EQ(merged.heavy_hitters().count(both), 1u);
  EXPECT_EQ(merged.query(both), 100u);
}

// --- CM / CU baselines ------------------------------------------------------

TEST(CmSketchMerge, BitExactVersusSerial) {
  const Trace trace = fixed_trace(13, 30'000, 2'000);
  sketch::CmSketch serial(3, 2048, 0xc0117);
  sketch::CmSketch shard_a(3, 2048, 0xc0117);
  sketch::CmSketch shard_b(3, 2048, 0xc0117);

  std::size_t i = 0;
  for (const auto& packet : trace.packets()) {
    serial.update(packet.key);
    ((i++ % 2 == 0) ? shard_a : shard_b).update(packet.key);
  }
  shard_a.merge(shard_b);
  shard_a.check_invariants();
  for (const FlowKey key : distinct_keys(trace)) {
    ASSERT_EQ(shard_a.query(key), serial.query(key));
  }
}

TEST(CmSketchMerge, RejectsMismatchedGeometryOrSeeds) {
  sketch::CmSketch sketch(3, 1024, 0xc0117);
  sketch::CmSketch wrong_width(3, 512, 0xc0117);
  sketch::CmSketch wrong_depth(2, 1024, 0xc0117);
  sketch::CmSketch wrong_seed(3, 1024, 0xbad5eed);
  EXPECT_THROW(sketch.merge(wrong_width), common::ContractViolation);
  EXPECT_THROW(sketch.merge(wrong_depth), common::ContractViolation);
  EXPECT_THROW(sketch.merge(wrong_seed), common::ContractViolation);
}

TEST(CuSketchMerge, MergedCountersNeverUnderestimate) {
  const Trace trace = fixed_trace(29, 20'000, 1'500);
  const flow::GroundTruth truth(trace);
  sketch::CuSketch shard_a(3, 2048, 0xc0117);
  sketch::CuSketch shard_b(3, 2048, 0xc0117);
  std::size_t i = 0;
  for (const auto& packet : trace.packets()) {
    ((i++ % 2 == 0) ? shard_a : shard_b).update(packet.key);
  }
  shard_a.merge(shard_b);
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(shard_a.query(key), size);
  }
}

// --- FCM+TopK ---------------------------------------------------------------

FcmTopK::Config topk_config() {
  FcmTopK::Config config;
  config.fcm = small_config();
  config.topk_entries = 512;
  return config;
}

TEST(FcmTopKMerge, NeverUnderestimatesAndKeepsInvariants) {
  const Trace trace = fixed_trace(31, 30'000, 2'000);
  const flow::GroundTruth truth(trace);

  FcmTopK shard_a(topk_config());
  FcmTopK shard_b(topk_config());
  std::size_t i = 0;
  for (const auto& packet : trace.packets()) {
    ((i++ % 2 == 0) ? shard_a : shard_b).update(packet.key);
  }
  shard_a.merge(shard_b);
  shard_a.check_invariants();

  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(shard_a.query(key), size)
        << "merged FCM+TopK underestimated a flow";
  }
}

TEST(FcmTopKMerge, SameKeyBucketsSumExactly) {
  // Two shards each hold the same single resident flow: merged heavy-part
  // count is the exact sum (no other flow contended for the bucket).
  FcmTopK shard_a(topk_config());
  FcmTopK shard_b(topk_config());
  const FlowKey elephant{0x42424242};
  for (int i = 0; i < 700; ++i) shard_a.update(elephant);
  for (int i = 0; i < 300; ++i) shard_b.update(elephant);
  shard_a.merge(shard_b);
  EXPECT_EQ(shard_a.query(elephant), 1000u);
}

TEST(FcmTopKMerge, RejectsMismatchedFilters) {
  FcmTopK a(topk_config());
  FcmTopK::Config wrong = topk_config();
  wrong.topk_entries = 1024;
  FcmTopK b(wrong);
  EXPECT_THROW(a.merge(b), common::ContractViolation);
}

}  // namespace
}  // namespace fcm
