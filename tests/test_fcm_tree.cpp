#include "fcm/fcm_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace fcm::core {
namespace {

// The paper's running example (Figures 4 and 5): a binary tree with three
// stages of 2/4/8-bit counters and four leaves.
FcmConfig paper_example_config() {
  FcmConfig config;
  config.tree_count = 1;
  config.k = 2;
  config.stage_bits = {2, 4, 8};
  config.leaf_count = 4;
  config.seed = 0x31337;
  return config;
}

// Finds a flow key hashing to the requested leaf.
flow::FlowKey key_for_leaf(const FcmTree& tree, std::size_t leaf) {
  for (std::uint32_t candidate = 1; candidate < 1u << 20; ++candidate) {
    if (tree.leaf_index(flow::FlowKey{candidate}) == leaf) {
      return flow::FlowKey{candidate};
    }
  }
  ADD_FAILURE() << "no key found for leaf " << leaf;
  return flow::FlowKey{0};
}

TEST(FcmTree, SingleIncrement) {
  const FcmConfig config = paper_example_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));
  const flow::FlowKey key{42};
  EXPECT_EQ(tree.add(key), 1u);
  EXPECT_EQ(tree.query(key), 1u);
  EXPECT_EQ(tree.total_count(), 1u);
}

TEST(FcmTree, QueryOfUnseenKeySharingNoLeafIsZero) {
  const FcmConfig config = paper_example_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));
  const flow::FlowKey a = key_for_leaf(tree, 0);
  const flow::FlowKey b = key_for_leaf(tree, 3);
  tree.add(a, 2);
  EXPECT_EQ(tree.query(b), 0u);
}

TEST(FcmTree, OverflowCarriesToSecondStage) {
  // 2-bit leaf counts to 2; the third increment trips the marker and lands
  // in stage 2 (paper Figure 4a).
  const FcmConfig config = paper_example_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));
  const flow::FlowKey key = key_for_leaf(tree, 2);
  tree.add(key);
  tree.add(key);
  EXPECT_FALSE(tree.node_overflowed(1, 2));
  EXPECT_EQ(tree.query(key), 2u);
  tree.add(key);
  EXPECT_TRUE(tree.node_overflowed(1, 2));
  EXPECT_EQ(tree.node_count(1, 2), 2u) << "overflowed leaf contributes 2^b-2";
  EXPECT_EQ(tree.query(key), 3u);
  EXPECT_EQ(tree.total_count(), 3u);
}

TEST(FcmTree, CascadedOverflowReachesThirdStage) {
  const FcmConfig config = paper_example_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));
  const flow::FlowKey key = key_for_leaf(tree, 0);
  // Capacity before stage 3: leaf 2 + stage-2 14 = 16.
  for (int i = 0; i < 17; ++i) tree.add(key);
  EXPECT_TRUE(tree.node_overflowed(1, 0));
  EXPECT_TRUE(tree.node_overflowed(2, 0));
  EXPECT_EQ(tree.node_count(3, 0), 1u);
  EXPECT_EQ(tree.query(key), 17u);
}

TEST(FcmTree, PaperFigure5FinalState) {
  // 25 packets at leaf 0, 3 at leaf 2 and 6 at leaf 3 reproduce the exact
  // state of Figure 5: C1=[3,0,3,3], C2=[15,5], C3=[9].
  const FcmConfig config = paper_example_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));
  const flow::FlowKey f_leaf0 = key_for_leaf(tree, 0);
  const flow::FlowKey f_leaf2 = key_for_leaf(tree, 2);
  const flow::FlowKey f_leaf3 = key_for_leaf(tree, 3);
  tree.add(f_leaf0, 25);
  tree.add(f_leaf2, 3);
  tree.add(f_leaf3, 6);

  EXPECT_EQ(tree.stage(1)[0], 3u);
  EXPECT_EQ(tree.stage(1)[1], 0u);
  EXPECT_EQ(tree.stage(1)[2], 3u);
  EXPECT_EQ(tree.stage(1)[3], 3u);
  EXPECT_EQ(tree.stage(2)[0], 15u);
  EXPECT_EQ(tree.stage(2)[1], 5u);
  EXPECT_EQ(tree.stage(3)[0], 9u);

  // Count-queries from the paper: f2 (leaf 0) = 2+14+9 = 25,
  // f1 (leaf 2) = 2+5 = 7.
  EXPECT_EQ(tree.query(f_leaf0), 25u);
  EXPECT_EQ(tree.query(f_leaf2), 7u);
  EXPECT_EQ(tree.total_count(), 34u);
}

TEST(FcmTree, BulkAddMatchesRepeatedUpdates) {
  const FcmConfig config = paper_example_config();
  FcmTree bulk(config, common::make_hash(config.seed, 0));
  FcmTree unit(config, common::make_hash(config.seed, 0));
  const flow::FlowKey key = key_for_leaf(bulk, 1);
  bulk.add(key, 23);
  std::uint64_t last = 0;
  for (int i = 0; i < 23; ++i) last = unit.add(key);
  for (std::size_t l = 1; l <= 3; ++l) {
    for (std::size_t i = 0; i < config.width(l); ++i) {
      EXPECT_EQ(bulk.stage(l)[i], unit.stage(l)[i]) << "stage " << l << " idx " << i;
    }
  }
  EXPECT_EQ(bulk.query(key), last);
}

TEST(FcmTree, AddReturnsPostUpdateEstimate) {
  const FcmConfig config = paper_example_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));
  const flow::FlowKey key = key_for_leaf(tree, 1);
  for (std::uint64_t i = 1; i <= 40; ++i) {
    EXPECT_EQ(tree.add(key), i);
    EXPECT_EQ(tree.query(key), i);
  }
}

TEST(FcmTree, ClearResetsEverything) {
  const FcmConfig config = paper_example_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));
  tree.add(flow::FlowKey{7}, 100);
  tree.clear();
  EXPECT_EQ(tree.total_count(), 0u);
  EXPECT_EQ(tree.empty_leaf_count(), 4u);
  EXPECT_EQ(tree.query(flow::FlowKey{7}), 0u);
}

TEST(FcmTree, EmptyLeafCount) {
  const FcmConfig config = paper_example_config();
  FcmTree tree(config, common::make_hash(config.seed, 0));
  EXPECT_EQ(tree.empty_leaf_count(), 4u);
  tree.add(key_for_leaf(tree, 0));
  tree.add(key_for_leaf(tree, 2));
  EXPECT_EQ(tree.empty_leaf_count(), 2u);
}

struct RandomParams {
  std::size_t k;
  std::vector<unsigned> bits;
  std::uint64_t seed;
};

class FcmTreeRandomTest : public ::testing::TestWithParam<RandomParams> {};

TEST_P(FcmTreeRandomTest, NeverUnderestimatesAndPreservesTotal) {
  const auto& p = GetParam();
  FcmConfig config;
  config.tree_count = 1;
  config.k = p.k;
  config.stage_bits = p.bits;
  config.leaf_count = p.k * p.k * 8;
  config.seed = p.seed;
  FcmTree tree(config, common::make_hash(config.seed, 0));

  common::Xoshiro256 rng(p.seed);
  std::map<std::uint32_t, std::uint64_t> truth;
  std::uint64_t total = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(200) + 1);
    // Skewed multiplicities to force overflows.
    const std::uint64_t count = rng.next_below(16) == 0 ? 50 : 1;
    tree.add(flow::FlowKey{key}, count);
    truth[key] += count;
    total += count;
  }
  EXPECT_EQ(tree.total_count(), total) << "feed-forward must not lose counts";
  for (const auto& [key, size] : truth) {
    EXPECT_GE(tree.query(flow::FlowKey{key}), size) << "key " << key;
  }
}

// The total-preservation invariant requires a root wide enough not to
// saturate (the paper's configurations use 32-bit roots; §5 notes the
// analysis assumes the final stage never fills).
INSTANTIATE_TEST_SUITE_P(
    Geometries, FcmTreeRandomTest,
    ::testing::Values(RandomParams{2, {2, 8, 32}, 1}, RandomParams{2, {4, 8, 32}, 2},
                      RandomParams{4, {8, 16, 32}, 3}, RandomParams{8, {8, 16, 32}, 4},
                      RandomParams{16, {8, 16, 32}, 5}, RandomParams{4, {4, 32}, 6},
                      RandomParams{2, {2, 4, 32}, 7}, RandomParams{8, {4, 8, 32}, 8}));

TEST(FcmTree, RootSaturationLosesCountsGracefully) {
  // With a narrow (8-bit) root, counts beyond the tree's capacity are
  // dropped by design; the query saturates at the path capacity instead of
  // wrapping or crashing.
  FcmConfig config;
  config.tree_count = 1;
  config.k = 2;
  config.stage_bits = {2, 4, 8};
  config.leaf_count = 4;
  FcmTree tree(config, common::make_hash(1, 0));
  const flow::FlowKey key{3};
  tree.add(key, 100000);
  const std::uint64_t capacity = 2 + 14 + 254;  // sum of counting maxima
  EXPECT_EQ(tree.query(key), capacity);
  EXPECT_EQ(tree.total_count(), capacity);
}

}  // namespace
}  // namespace fcm::core
