// Bit-exactness of the batched ingest kernel (DESIGN.md §9).
//
// Every batch entry point added for the hot path — SeededHash::index_batch,
// FcmTree::add_batch, FcmSketch::add_batch, CmSketch::update_batch,
// TopKFilter::offer_batch via FcmTopK::add_batch, FcmFramework::process_batch
// and the span overloads, and ShardedFcmFramework::ingest(span) — must leave
// EXACTLY the state the scalar per-packet path leaves: every tree node, the
// promotion counters, TopK vote-table entries, heavy-hitter sets, and the
// per-key estimates. Tolerances are zero throughout; any divergence means the
// fast path changed semantics, not just speed.
//
// Coverage: batch sizes {1, 7, 64, 1000} (below/at/above the kBatchBlock
// stride, odd tails included), duplicate keys within one batch (carry and
// eviction ordering), and batches interleaved with rotate_async() epoch
// markers on the sharded runtime.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/simd_dispatch.h"
#include "fcm/fcm_sketch.h"
#include "fcm/fcm_topk.h"
#include "fcm/fcm_tree.h"
#include "flow/flow_key.h"
#include "flow/packet.h"
#include "framework/fcm_framework.h"
#include "runtime/sharded_framework.h"
#include "sketch/cardinality.h"
#include "sketch/cm_sketch.h"

namespace {

using fcm::core::FcmConfig;
using fcm::core::FcmSketch;
using fcm::core::FcmTopK;
using fcm::core::FcmTree;
using fcm::flow::FlowKey;
using fcm::flow::Packet;
using fcm::framework::FcmFramework;
using fcm::runtime::ShardedFcmFramework;
using fcm::sketch::CmSketch;

// The batch sizes the ISSUE pins: below / at / well above the block stride,
// with odd tails (1000 = 15 * 64 + 40).
constexpr std::size_t kBatchSizes[] = {1, 7, 64, 1000};

// Small multi-level geometry; tiny leaf stage (8-bit) so fixed traces push
// plenty of keys through the overflow slow path, exercising the fast/slow
// boundary the batch kernel specializes.
FcmConfig small_config() {
  FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 2048;
  config.seed = 0x5555aaaa;
  return config;
}

// Deterministic skewed key stream: few hot keys (lots of duplicates and
// overflow carries), many cold ones.
std::vector<FlowKey> skewed_keys(std::size_t n, std::uint64_t seed,
                                 std::size_t distinct = 256) {
  std::mt19937_64 rng(seed);
  std::vector<FlowKey> pool;
  pool.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    pool.push_back(FlowKey{static_cast<std::uint32_t>(rng()) | 1u});
  }
  std::vector<double> weights(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
  std::vector<FlowKey> keys;
  keys.reserve(n);
  for (std::size_t p = 0; p < n; ++p) keys.push_back(pool[pick(rng)]);
  return keys;
}

// Every stored node of every stage of every tree.
void expect_trees_identical(const FcmSketch& a, const FcmSketch& b) {
  ASSERT_EQ(a.tree_count(), b.tree_count());
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    for (std::size_t l = 1; l <= a.config().stage_count(); ++l) {
      const auto sa = a.tree(t).stage(l);
      const auto sb = b.tree(t).stage(l);
      ASSERT_EQ(sa.size(), sb.size());
      for (std::size_t i = 0; i < sa.size(); ++i) {
        ASSERT_EQ(sa[i], sb[i]) << "tree " << t << " stage " << l << " node " << i;
      }
    }
  }
}

// Trees plus the promotion telemetry and the raw heavy-hitter set — the
// strongest equality the sketch exposes. Right for scalar-vs-batch on ONE
// structure; the sharded runtime's merged epochs are only tree-state exact
// (merge re-derives promotions and re-qualifies heavy hitters), so those
// comparisons use expect_trees_identical directly.
void expect_sketch_identical(const FcmSketch& a, const FcmSketch& b) {
  expect_trees_identical(a, b);
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    EXPECT_EQ(a.tree(t).overflow_promotion_count(),
              b.tree(t).overflow_promotion_count())
        << "tree " << t << " promotion counter diverged";
  }
  EXPECT_EQ(a.heavy_hitters(), b.heavy_hitters());
}

// --- hash layer --------------------------------------------------------------

TEST(BatchEquivalence, IndexBatchMatchesScalarIndex) {
  const fcm::common::SeededHash hash(0xfeedf00d);
  const auto keys = skewed_keys(1000, 1);
  std::vector<std::size_t> batch(keys.size());
  for (const std::size_t width : {1ul, 7ul, 2048ul, 600000ul}) {
    hash.index_batch(std::span<const FlowKey>(keys), width,
                     std::span<std::size_t>(batch));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(batch[i], hash.index(keys[i], width)) << "width " << width;
    }
  }
}

TEST(BatchEquivalence, InlineU32HashMatchesGeneralBob) {
  // The inline 4-byte specialization must stay bit-identical to the
  // out-of-line lookup3 path the scalar code used to take.
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t value = static_cast<std::uint32_t>(rng());
    const std::uint32_t seed = static_cast<std::uint32_t>(rng());
    const auto bytes = std::as_bytes(std::span<const std::uint32_t, 1>{&value, 1});
    ASSERT_EQ(fcm::common::bob_hash_u32(value, seed),
              fcm::common::bob_hash(bytes, seed));
  }
}

// --- FcmTree -----------------------------------------------------------------

TEST(BatchEquivalence, TreeBatchMatchesScalarAdds) {
  for (const std::size_t n : kBatchSizes) {
    const auto keys = skewed_keys(n, 42 + n);
    FcmTree scalar(small_config(), fcm::common::SeededHash(0xabc));
    FcmTree batched(small_config(), fcm::common::SeededHash(0xabc));

    std::vector<std::uint64_t> scalar_estimates;
    scalar_estimates.reserve(n);
    for (const FlowKey key : keys) scalar_estimates.push_back(scalar.add(key));

    std::vector<std::uint64_t> batch_estimates(
        n, std::numeric_limits<std::uint64_t>::max());
    batched.add_batch(std::span<const FlowKey>(keys),
                      std::span<std::uint64_t>(batch_estimates));

    for (std::size_t l = 1; l <= small_config().stage_count(); ++l) {
      const auto sa = scalar.stage(l);
      const auto sb = batched.stage(l);
      for (std::size_t i = 0; i < sa.size(); ++i) {
        ASSERT_EQ(sa[i], sb[i]) << "n=" << n << " stage " << l << " node " << i;
      }
    }
    EXPECT_EQ(scalar.overflow_promotion_count(),
              batched.overflow_promotion_count());
    // min_estimates seeded with UINT64_MAX collapse to the per-key estimate.
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch_estimates[i], scalar_estimates[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(BatchEquivalence, TreeBatchDuplicateHeavyKey) {
  // One key repeated through a whole batch: every increment after the first
  // stage-1 saturation must take the slow carry path, and later duplicates
  // in the SAME block must observe the earlier carries.
  FcmTree scalar(small_config(), fcm::common::SeededHash(0x77));
  FcmTree batched(small_config(), fcm::common::SeededHash(0x77));
  const std::vector<FlowKey> keys(1000, FlowKey{0xdecafbad});

  std::vector<std::uint64_t> scalar_estimates;
  for (const FlowKey key : keys) scalar_estimates.push_back(scalar.add(key));
  std::vector<std::uint64_t> batch_estimates(
      keys.size(), std::numeric_limits<std::uint64_t>::max());
  batched.add_batch(std::span<const FlowKey>(keys),
                    std::span<std::uint64_t>(batch_estimates));

  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(batch_estimates[i], scalar_estimates[i]) << "i=" << i;
  }
  EXPECT_EQ(scalar.overflow_promotion_count(),
            batched.overflow_promotion_count());
  EXPECT_EQ(scalar.query(keys[0]), batched.query(keys[0]));
}

// --- FcmSketch ---------------------------------------------------------------

TEST(BatchEquivalence, SketchBatchMatchesScalarUpdates) {
  for (const std::size_t n : kBatchSizes) {
    const auto keys = skewed_keys(n, 1000 + n);
    FcmSketch scalar(small_config());
    FcmSketch batched(small_config());
    scalar.set_heavy_hitter_threshold(20);
    batched.set_heavy_hitter_threshold(20);

    for (const FlowKey key : keys) scalar.update(key);
    batched.add_batch(std::span<const FlowKey>(keys));

    expect_sketch_identical(scalar, batched);
  }
}

TEST(BatchEquivalence, SketchBatchSplitArbitrarily) {
  // Splitting one stream into many batches of awkward sizes changes nothing:
  // ...(batch of 1)(batch of 7)(batch of 64)(batch of 1000)... == scalar.
  const auto keys = skewed_keys(2144, 9);  // 1 + 7 + 64 + 1000 + 1072 tail
  FcmSketch scalar(small_config());
  FcmSketch batched(small_config());
  for (const FlowKey key : keys) scalar.update(key);

  std::span<const FlowKey> rest(keys);
  for (const std::size_t n : kBatchSizes) {
    batched.add_batch(rest.subspan(0, n));
    rest = rest.subspan(n);
  }
  batched.add_batch(rest);

  expect_sketch_identical(scalar, batched);
}

// --- CmSketch ----------------------------------------------------------------

TEST(BatchEquivalence, CmSketchBatchMatchesScalarUpdates) {
  for (const std::size_t n : kBatchSizes) {
    const auto keys = skewed_keys(n, 31 + n);
    CmSketch scalar(3, 1024);
    CmSketch batched(3, 1024);
    for (const FlowKey key : keys) scalar.update(key);
    batched.update_batch(std::span<const FlowKey>(keys));
    for (const FlowKey key : keys) {
      ASSERT_EQ(scalar.query(key), batched.query(key));
    }
    EXPECT_EQ(scalar.saturation_count(), batched.saturation_count());
  }
}

// --- FcmTopK -----------------------------------------------------------------

TEST(BatchEquivalence, TopKBatchMatchesScalarUpdates) {
  for (const std::size_t n : kBatchSizes) {
    const auto keys = skewed_keys(n, 555 + n);
    FcmTopK::Config config;
    config.fcm = small_config();
    config.topk_entries = 64;  // tiny table: plenty of evictions
    FcmTopK scalar(config);
    FcmTopK batched(config);
    scalar.set_heavy_hitter_threshold(20);
    batched.set_heavy_hitter_threshold(20);

    for (const FlowKey key : keys) scalar.update(key);
    batched.add_batch(std::span<const FlowKey>(keys));

    // Sketch parts bit-exact (including eviction flush ordering) ...
    expect_sketch_identical(scalar.sketch(), batched.sketch());
    // ... and the filter tables hold the same entries.
    auto ea = scalar.filter().entries();
    auto eb = batched.filter().entries();
    const auto by_key = [](const auto& x, const auto& y) { return x.key < y.key; };
    std::sort(ea.begin(), ea.end(), by_key);
    std::sort(eb.begin(), eb.end(), by_key);
    ASSERT_EQ(ea.size(), eb.size()) << "n=" << n;
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].key, eb[i].key);
      EXPECT_EQ(ea[i].count, eb[i].count);
      EXPECT_EQ(ea[i].has_light_part, eb[i].has_light_part);
    }
    for (const FlowKey key : keys) {
      ASSERT_EQ(scalar.query(key), batched.query(key));
    }
  }
}

TEST(BatchEquivalence, TopKBatchZeroKeyPassesThrough) {
  // FlowKey{0} is the filter's empty sentinel; the batch path must route it
  // to the sketch exactly as offer() does.
  FcmTopK::Config config;
  config.fcm = small_config();
  config.topk_entries = 64;
  FcmTopK scalar(config);
  FcmTopK batched(config);
  std::vector<FlowKey> keys = skewed_keys(100, 77);
  for (std::size_t i = 0; i < keys.size(); i += 3) keys[i] = FlowKey{0};

  for (const FlowKey key : keys) scalar.update(key);
  batched.add_batch(std::span<const FlowKey>(keys));

  expect_sketch_identical(scalar.sketch(), batched.sketch());
  EXPECT_EQ(scalar.query(FlowKey{0}), batched.query(FlowKey{0}));
}

// --- FcmFramework ------------------------------------------------------------

TEST(BatchEquivalence, FrameworkSpanMatchesPerPacket) {
  for (const bool with_topk : {false, true}) {
    FcmFramework::Options options;
    options.fcm = small_config();
    options.topk_entries = with_topk ? 64 : 0;
    options.heavy_hitter_threshold = 25;
    options.metrics = nullptr;
    FcmFramework scalar(options);
    FcmFramework batched(options);

    const auto keys = skewed_keys(3000, 13);
    std::vector<Packet> packets;
    packets.reserve(keys.size());
    for (const FlowKey key : keys) packets.push_back({key, 100, 0});

    for (const Packet& packet : packets) scalar.process(packet);
    batched.process(std::span<const Packet>(packets));

    expect_sketch_identical(scalar.sketch(), batched.sketch());
    auto hh_a = scalar.heavy_hitters();
    auto hh_b = batched.heavy_hitters();
    std::sort(hh_a.begin(), hh_a.end());
    std::sort(hh_b.begin(), hh_b.end());
    EXPECT_EQ(hh_a, hh_b) << "with_topk=" << with_topk;
    for (const FlowKey key : keys) {
      ASSERT_EQ(scalar.flow_size(key), batched.flow_size(key));
    }
  }
}

TEST(BatchEquivalence, FrameworkByteModeSpanMatchesPerPacket) {
  // kBytes increments are data-dependent, so the span overload stays on the
  // per-packet path — but it must still produce identical state.
  FcmFramework::Options options;
  options.fcm = small_config();
  options.count_mode = FcmFramework::CountMode::kBytes;
  options.metrics = nullptr;
  FcmFramework scalar(options);
  FcmFramework batched(options);

  const auto keys = skewed_keys(2000, 21);
  std::mt19937_64 rng(22);
  std::vector<Packet> packets;
  packets.reserve(keys.size());
  for (const FlowKey key : keys) {
    packets.push_back({key, static_cast<std::uint32_t>(40 + rng() % 1460), 0});
  }
  for (const Packet& packet : packets) scalar.process(packet);
  batched.process(std::span<const Packet>(packets));
  expect_sketch_identical(scalar.sketch(), batched.sketch());
}

// --- sharded runtime ---------------------------------------------------------

TEST(BatchEquivalence, ShardedSpanIngestInterleavedWithRotations) {
  // ingest(span<FlowKey>) batches interleaved with rotate_async() epoch
  // markers: each merged epoch must be bit-exact the serial framework fed
  // that epoch's keys through process_batch (plain-FCM merge is exact).
  const auto keys = skewed_keys(24000, 99, 1500);
  const std::size_t third = keys.size() / 3;

  for (const std::size_t shards : {1ul, 2ul, 4ul}) {
    ShardedFcmFramework::Options options;
    options.framework.fcm = small_config();
    options.framework.heavy_hitter_threshold = 50;
    options.framework.metrics = nullptr;
    options.metrics = nullptr;
    options.shard_count = shards;
    options.queue_capacity = 1 << 10;
    ShardedFcmFramework sharded(options);

    std::span<const FlowKey> all(keys);
    // Epoch 0: two batches with an odd split. Epoch 1: the rest, pushed as
    // several small spans between the rotation markers.
    sharded.ingest(all.subspan(0, third - 5));
    sharded.ingest(all.subspan(third - 5, 5));
    const std::size_t epoch0 = sharded.rotate_async();
    for (std::size_t base = third; base < keys.size(); base += 1000) {
      sharded.ingest(all.subspan(base, std::min<std::size_t>(1000, keys.size() - base)));
    }
    const std::size_t epoch1 = sharded.rotate_async();
    sharded.wait_epoch(epoch0);
    sharded.wait_epoch(epoch1);

    FcmFramework::Options serial_options = options.framework;
    FcmFramework serial0(serial_options);
    serial0.process_batch(all.subspan(0, third));
    FcmFramework serial1(serial_options);
    serial1.process_batch(all.subspan(third));

    expect_trees_identical(serial0.sketch(), sharded.merged_epoch(1).sketch());
    expect_trees_identical(serial1.sketch(), sharded.merged_epoch(0).sketch());
    sharded.stop();
  }
}

TEST(BatchEquivalence, ShardedBlockStagedSpansBitExactAcrossSizesAndShards) {
  // The block-staged hand-off matrix the ISSUE pins: N in {1, 2, 4, 8} and
  // span sizes {1, block-1, block, block+1, 10*block} around the publication
  // boundary (block == flush_batch), interleaved with rotations so partial
  // blocks get flushed by the marker path mid-stream. Each merged epoch must
  // be tree-bit-exact against a serial framework fed the same keys — the
  // rotation boundary falls INSIDE a span-size cycle, so epochs end on
  // ragged, partially-staged state.
  constexpr std::size_t kBlock = 64;  // default Options::flush_batch
  const std::size_t span_sizes[] = {1, kBlock - 1, kBlock, kBlock + 1,
                                    10 * kBlock};
  // One cycle consumes 1 + 63 + 64 + 65 + 640 = 833 keys; three cycles total.
  const auto keys = skewed_keys(3 * 833, 123, 1200);

  for (const std::size_t shards : {1ul, 2ul, 4ul, 8ul}) {
    ShardedFcmFramework::Options options;
    options.framework.fcm = small_config();
    options.framework.heavy_hitter_threshold = 50;
    options.framework.metrics = nullptr;
    options.metrics = nullptr;
    options.shard_count = shards;
    ShardedFcmFramework sharded(options);

    // Epoch 0: one full cycle of the span sizes (831 keys). Epoch 1: two
    // more cycles. Serial twins consume the same split.
    std::span<const FlowKey> rest(keys);
    const auto feed_cycles = [&](std::size_t cycles) {
      std::size_t fed = 0;
      for (std::size_t c = 0; c < cycles; ++c) {
        for (const std::size_t n : span_sizes) {
          sharded.ingest(rest.subspan(0, n));
          rest = rest.subspan(n);
          fed += n;
        }
      }
      return fed;
    };
    const std::size_t epoch0_keys = feed_cycles(1);
    const std::size_t epoch0 = sharded.rotate_async();
    const std::size_t epoch1_keys = feed_cycles(2);
    const std::size_t epoch1 = sharded.rotate_async();
    ASSERT_EQ(sharded.wait_epoch(epoch0).packets, epoch0_keys);
    ASSERT_EQ(sharded.wait_epoch(epoch1).packets, epoch1_keys);

    std::span<const FlowKey> all(keys);
    FcmFramework::Options serial_options = options.framework;
    FcmFramework serial0(serial_options);
    serial0.process_batch(all.subspan(0, epoch0_keys));
    FcmFramework serial1(serial_options);
    serial1.process_batch(all.subspan(epoch0_keys, epoch1_keys));

    expect_trees_identical(serial0.sketch(), sharded.merged_epoch(1).sketch());
    expect_trees_identical(serial1.sketch(), sharded.merged_epoch(0).sketch());
    sharded.stop();
  }
}

// --- kernel dispatch matrix (DESIGN.md §14) ----------------------------------
//
// Every kernel tier — scalar, autovec, and (on capable CPUs) the hand-written
// AVX2 kernel — forced in-process through force_kernel_tier(), must produce
// bit-identical hashes, indices, tree state, promotion counters, and per-key
// estimates. The scalar per-key entry points (FcmTree::add, FcmSketch::update)
// never dispatch, so they are the tier-independent ground truth throughout.

using fcm::common::simd::KernelTier;

// Tiers available on this machine. AVX2 joins the matrix only when the CPU
// supports it; CI's perf-smoke asserts capable runners actually take it.
std::vector<KernelTier> equivalence_tiers() {
  std::vector<KernelTier> tiers{KernelTier::kScalar, KernelTier::kAutovec};
  if (fcm::common::simd::cpu_supports_avx2()) tiers.push_back(KernelTier::kAvx2);
  return tiers;
}

// RAII tier override; restores the probed default on scope exit so test
// order never leaks a forced tier.
class ForcedTier {
 public:
  explicit ForcedTier(KernelTier tier) {
    fcm::common::simd::force_kernel_tier(tier);
  }
  ~ForcedTier() { fcm::common::simd::force_kernel_tier(std::nullopt); }
  ForcedTier(const ForcedTier&) = delete;
  ForcedTier& operator=(const ForcedTier&) = delete;
};

// The ISSUE's dispatch-matrix sizes: below / straddling / well above both the
// kBatchBlock stride and the AVX2 8-lane group width.
constexpr std::size_t kMatrixSizes[] = {1, 7, 63, 64, 65, 1000};

TEST(DispatchMatrix, IndexBatchBitExactAcrossTiers) {
  const fcm::common::SeededHash hash(0xfeedf00d);
  for (const KernelTier tier : equivalence_tiers()) {
    ForcedTier forced(tier);
    for (const std::size_t n : kMatrixSizes) {
      const auto keys = skewed_keys(n, 17 + n);
      std::vector<std::uint32_t> idx(n);
      std::vector<std::uint32_t> raw(n);
      for (const std::size_t width : {1ul, 7ul, 2048ul, 600000ul}) {
        hash.index_hash_batch(std::span<const FlowKey>(keys), width,
                              std::span<std::uint32_t>(idx),
                              std::span<std::uint32_t>(raw));
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(idx[i], hash.index(keys[i], width))
              << "tier " << fcm::common::simd::kernel_tier_name(tier)
              << " n=" << n << " width=" << width << " i=" << i;
          ASSERT_EQ(raw[i], hash(keys[i]));
        }
        // The raw-less overload takes the same tiered path.
        hash.index_batch(std::span<const FlowKey>(keys), width,
                         std::span<std::uint32_t>(idx));
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(idx[i], hash.index(keys[i], width));
        }
      }
    }
  }
}

TEST(DispatchMatrix, HashBatchMatchesScalarOperator) {
  const fcm::common::SeededHash hash(0x9a27);
  for (const KernelTier tier : equivalence_tiers()) {
    ForcedTier forced(tier);
    for (const std::size_t n : kMatrixSizes) {
      const auto keys = skewed_keys(n, 29 + n);
      std::vector<std::uint32_t> hashes(n);
      hash.hash_batch(std::span<const FlowKey>(keys),
                      std::span<std::uint32_t>(hashes));
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hashes[i], hash(keys[i]))
            << "tier " << fcm::common::simd::kernel_tier_name(tier)
            << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(DispatchMatrix, TreeBatchBitExactAcrossTiers) {
  for (const KernelTier tier : equivalence_tiers()) {
    ForcedTier forced(tier);
    for (const std::size_t n : kMatrixSizes) {
      // Dup-heavy skew: plenty of repeated keys inside single 8-lane groups,
      // so the AVX2 duplicate-detect bailout runs on real collisions.
      const auto keys = skewed_keys(n, 42 + n);
      FcmTree scalar(small_config(), fcm::common::SeededHash(0xabc));
      FcmTree batched(small_config(), fcm::common::SeededHash(0xabc));

      std::vector<std::uint64_t> scalar_estimates;
      scalar_estimates.reserve(n);
      for (const FlowKey key : keys) scalar_estimates.push_back(scalar.add(key));

      std::vector<std::uint64_t> batch_estimates(
          n, std::numeric_limits<std::uint64_t>::max());
      batched.add_batch(std::span<const FlowKey>(keys),
                        std::span<std::uint64_t>(batch_estimates));

      for (std::size_t l = 1; l <= small_config().stage_count(); ++l) {
        const auto sa = scalar.stage(l);
        const auto sb = batched.stage(l);
        for (std::size_t i = 0; i < sa.size(); ++i) {
          ASSERT_EQ(sa[i], sb[i])
              << "tier " << fcm::common::simd::kernel_tier_name(tier)
              << " n=" << n << " stage " << l << " node " << i;
        }
      }
      EXPECT_EQ(scalar.overflow_promotion_count(),
                batched.overflow_promotion_count());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(batch_estimates[i], scalar_estimates[i])
            << "tier " << fcm::common::simd::kernel_tier_name(tier)
            << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(DispatchMatrix, TreeOverflowLaneFallbackAcrossTiers) {
  // A 4-bit leaf stage (counting max 14) over 64 leaves: most groups of 8
  // contain at-cap lanes after a few hundred adds, so the AVX2 kernel's
  // partial-consume + scalar-resume protocol runs constantly, interleaved
  // with add_at carry walks. Promotions must land in the SAME key positions
  // as the scalar path — any lane-order slip shows up in the estimates.
  FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {4, 8, 32};
  config.leaf_count = 64;
  config.seed = 0x1234;

  for (const KernelTier tier : equivalence_tiers()) {
    ForcedTier forced(tier);
    const auto keys = skewed_keys(4000, 7, 512);
    FcmTree scalar(config, fcm::common::SeededHash(0x55));
    FcmTree batched(config, fcm::common::SeededHash(0x55));

    std::vector<std::uint64_t> scalar_estimates;
    for (const FlowKey key : keys) scalar_estimates.push_back(scalar.add(key));
    std::vector<std::uint64_t> batch_estimates(
        keys.size(), std::numeric_limits<std::uint64_t>::max());
    batched.add_batch(std::span<const FlowKey>(keys),
                      std::span<std::uint64_t>(batch_estimates));

    // The point of the fixture: the overflow slow path actually ran.
    ASSERT_GT(scalar.overflow_promotion_count(), 0u);
    EXPECT_EQ(scalar.overflow_promotion_count(),
              batched.overflow_promotion_count())
        << "tier " << fcm::common::simd::kernel_tier_name(tier);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(batch_estimates[i], scalar_estimates[i])
          << "tier " << fcm::common::simd::kernel_tier_name(tier) << " i=" << i;
    }
    for (std::size_t l = 1; l <= config.stage_count(); ++l) {
      const auto sa = scalar.stage(l);
      const auto sb = batched.stage(l);
      for (std::size_t i = 0; i < sa.size(); ++i) {
        ASSERT_EQ(sa[i], sb[i]) << "stage " << l << " node " << i;
      }
    }
  }
}

TEST(DispatchMatrix, TreeDuplicateHeavyKeyAcrossTiers) {
  // One key repeated 1000 times: every 8-lane group is all-duplicates, so
  // the AVX2 kernel consumes nothing and the scalar-resume path does all the
  // work — the degenerate worst case for the bailout protocol.
  for (const KernelTier tier : equivalence_tiers()) {
    ForcedTier forced(tier);
    FcmTree scalar(small_config(), fcm::common::SeededHash(0x77));
    FcmTree batched(small_config(), fcm::common::SeededHash(0x77));
    const std::vector<FlowKey> keys(1000, FlowKey{0xdecafbad});

    std::vector<std::uint64_t> scalar_estimates;
    for (const FlowKey key : keys) scalar_estimates.push_back(scalar.add(key));
    std::vector<std::uint64_t> batch_estimates(
        keys.size(), std::numeric_limits<std::uint64_t>::max());
    batched.add_batch(std::span<const FlowKey>(keys),
                      std::span<std::uint64_t>(batch_estimates));

    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(batch_estimates[i], scalar_estimates[i])
          << "tier " << fcm::common::simd::kernel_tier_name(tier) << " i=" << i;
    }
    EXPECT_EQ(scalar.overflow_promotion_count(),
              batched.overflow_promotion_count());
  }
}

TEST(DispatchMatrix, SketchSplitBatchesAcrossTiers) {
  for (const KernelTier tier : equivalence_tiers()) {
    ForcedTier forced(tier);
    const auto keys = skewed_keys(2144, 9);
    FcmSketch scalar(small_config());
    FcmSketch batched(small_config());
    scalar.set_heavy_hitter_threshold(20);
    batched.set_heavy_hitter_threshold(20);
    for (const FlowKey key : keys) scalar.update(key);

    std::span<const FlowKey> rest(keys);
    for (const std::size_t n : kMatrixSizes) {
      batched.add_batch(rest.subspan(0, n));
      rest = rest.subspan(n);
    }
    batched.add_batch(rest);

    expect_sketch_identical(scalar, batched);
  }
}

TEST(DispatchMatrix, TierParsingAndEnvResolution) {
  using fcm::common::simd::parse_kernel_tier;
  using fcm::common::simd::resolve_kernel_tier;
  EXPECT_EQ(parse_kernel_tier("scalar"), KernelTier::kScalar);
  EXPECT_EQ(parse_kernel_tier("autovec"), KernelTier::kAutovec);
  EXPECT_EQ(parse_kernel_tier("avx2"), KernelTier::kAvx2);
  EXPECT_EQ(parse_kernel_tier("AVX2"), std::nullopt);
  EXPECT_EQ(parse_kernel_tier(""), std::nullopt);

  // The FCM_FORCE_KERNEL contract: a valid value wins; avx2 on a CPU
  // without AVX2 degrades to autovec; garbage falls back to the probe.
  const KernelTier probed = resolve_kernel_tier();
  ASSERT_EQ(setenv("FCM_FORCE_KERNEL", "scalar", 1), 0);
  EXPECT_EQ(resolve_kernel_tier(), KernelTier::kScalar);
  ASSERT_EQ(setenv("FCM_FORCE_KERNEL", "avx2", 1), 0);
  EXPECT_EQ(resolve_kernel_tier(), fcm::common::simd::cpu_supports_avx2()
                                       ? KernelTier::kAvx2
                                       : KernelTier::kAutovec);
  ASSERT_EQ(setenv("FCM_FORCE_KERNEL", "bogus", 1), 0);
  EXPECT_EQ(resolve_kernel_tier(), probed);
  ASSERT_EQ(unsetenv("FCM_FORCE_KERNEL"), 0);
  EXPECT_EQ(resolve_kernel_tier(), probed);
}

// --- single-pass multi-query sweep (DESIGN.md §14) ---------------------------
//
// Options::single_pass_sweep folds the cardinality sidecars into the ingest
// sweep, reusing tree-0's raw hashes. "Identical to the separate-pass path"
// is literal: the sidecar state (hence every estimate) must be bit-equal to
// LinearCounting/HyperLogLog instances fed the same keys on their own, and
// the sketch state must be untouched by the sweep.

FcmFramework::Options sweep_options() {
  FcmFramework::Options options;
  options.fcm = small_config();
  options.single_pass_sweep = true;
  options.metrics = nullptr;
  return options;
}

TEST(SinglePassSweep, MatchesSeparatePassAcrossTiers) {
  for (const KernelTier tier : equivalence_tiers()) {
    ForcedTier forced(tier);
    for (const std::size_t n : kMatrixSizes) {
      const auto keys = skewed_keys(n, 61 + n);
      FcmFramework swept(sweep_options());
      FcmFramework plain(sweep_options());
      // Batched single-pass ingest vs the scalar per-key entry point.
      swept.process_batch(std::span<const FlowKey>(keys));
      for (const FlowKey key : keys) plain.process(key);

      // Separate-pass reference: standalone sidecars over the same hash.
      const auto h0 = swept.sketch().tree(0).hash();
      fcm::sketch::LinearCounting ref_lc(
          sweep_options().sweep_linear_bits, h0);
      fcm::sketch::HyperLogLog ref_hll(
          sweep_options().sweep_hll_registers, h0);
      for (const FlowKey key : keys) {
        ref_lc.update(key);
        ref_hll.update(key);
      }

      const char* name = fcm::common::simd::kernel_tier_name(tier).data();
      EXPECT_EQ(swept.sweep_linear().zero_bits(), ref_lc.zero_bits())
          << "tier " << name << " n=" << n;
      EXPECT_EQ(swept.sweep_linear().estimate(), ref_lc.estimate());
      EXPECT_EQ(swept.sweep_hll().estimate(), ref_hll.estimate())
          << "tier " << name << " n=" << n;
      // Scalar-entry sidecars agree bit for bit with the batched sweep.
      EXPECT_EQ(plain.sweep_linear().zero_bits(),
                swept.sweep_linear().zero_bits());
      EXPECT_EQ(plain.sweep_hll().estimate(), swept.sweep_hll().estimate());
      // And the sweep changed nothing in the sketch itself.
      expect_sketch_identical(plain.sketch(), swept.sketch());
    }
  }
}

TEST(SinglePassSweep, WeightedAndByteModeCountDistinctFlows) {
  // Weighted inserts and byte-mode packets update the sidecars once per
  // call — bit-identical to the separate-pass sidecars fed one update per
  // packet, because repeated updates of one key are idempotent.
  const auto keys = skewed_keys(500, 83, 64);

  FcmFramework::Options byte_options = sweep_options();
  byte_options.count_mode = FcmFramework::CountMode::kBytes;
  FcmFramework bytes_fw(byte_options);
  FcmFramework weighted_fw(sweep_options());
  for (const FlowKey key : keys) {
    bytes_fw.process(Packet{key, 1400, 0});
    weighted_fw.process_weighted(key, 37);
  }

  const auto h0 = bytes_fw.sketch().tree(0).hash();
  fcm::sketch::LinearCounting ref_lc(sweep_options().sweep_linear_bits, h0);
  fcm::sketch::HyperLogLog ref_hll(sweep_options().sweep_hll_registers, h0);
  for (const FlowKey key : keys) {
    ref_lc.update(key);
    ref_hll.update(key);
  }
  EXPECT_EQ(bytes_fw.sweep_linear().zero_bits(), ref_lc.zero_bits());
  EXPECT_EQ(bytes_fw.sweep_hll().estimate(), ref_hll.estimate());
  EXPECT_EQ(weighted_fw.sweep_linear().zero_bits(), ref_lc.zero_bits());
  EXPECT_EQ(weighted_fw.sweep_hll().estimate(), ref_hll.estimate());
}

TEST(SinglePassSweep, MergeAndResetPreserveSidecars) {
  const auto keys = skewed_keys(4000, 91, 700);
  const std::size_t half = keys.size() / 2;

  FcmFramework left(sweep_options());
  FcmFramework right(sweep_options());
  FcmFramework whole(sweep_options());
  left.process_batch(std::span<const FlowKey>(keys).subspan(0, half));
  right.process_batch(std::span<const FlowKey>(keys).subspan(half));
  whole.process_batch(std::span<const FlowKey>(keys));

  left.merge(right);
  EXPECT_EQ(left.sweep_linear().zero_bits(), whole.sweep_linear().zero_bits());
  EXPECT_EQ(left.sweep_linear().estimate(), whole.sweep_linear().estimate());
  EXPECT_EQ(left.sweep_hll().estimate(), whole.sweep_hll().estimate());
  expect_trees_identical(left.sketch(), whole.sketch());

  left.reset();
  EXPECT_EQ(left.sweep_linear().zero_bits(),
            sweep_options().sweep_linear_bits);
}

TEST(SinglePassSweep, ShardedSweepMatchesSerialSinglePass) {
  // The sweep rides the sharded workers' process_batch calls; the exact
  // OR/max sidecar merges make each merged epoch's sidecars bit-equal to a
  // serial single-pass framework fed that epoch's keys. Runs under TSan via
  // the sanitizer jobs (worker threads + coordinator merge).
  const auto keys = skewed_keys(20000, 131, 1500);
  const std::size_t half = keys.size() / 2;

  for (const std::size_t shards : {1ul, 4ul}) {
    ShardedFcmFramework::Options options;
    options.framework = sweep_options();
    options.metrics = nullptr;
    options.shard_count = shards;
    ShardedFcmFramework sharded(options);

    std::span<const FlowKey> all(keys);
    sharded.ingest(all.subspan(0, half));
    const std::size_t epoch0 = sharded.rotate_async();
    sharded.ingest(all.subspan(half));
    const std::size_t epoch1 = sharded.rotate_async();
    const auto report0 = sharded.wait_epoch(epoch0);
    sharded.wait_epoch(epoch1);

    FcmFramework serial0(sweep_options());
    serial0.process_batch(all.subspan(0, half));
    FcmFramework serial1(sweep_options());
    serial1.process_batch(all.subspan(half));

    const FcmFramework merged0 = sharded.merged_epoch(1);
    const FcmFramework merged1 = sharded.merged_epoch(0);
    EXPECT_EQ(merged0.sweep_linear().zero_bits(),
              serial0.sweep_linear().zero_bits())
        << "shards=" << shards;
    EXPECT_EQ(merged0.sweep_hll().estimate(), serial0.sweep_hll().estimate());
    EXPECT_EQ(merged1.sweep_linear().zero_bits(),
              serial1.sweep_linear().zero_bits());
    EXPECT_EQ(merged1.sweep_hll().estimate(), serial1.sweep_hll().estimate());
    // The report surfaces the HLL sidecar estimate directly.
    EXPECT_EQ(report0.sweep_cardinality, serial0.sweep_hll().estimate());
    expect_trees_identical(merged0.sketch(), serial0.sketch());
    sharded.stop();
  }
}

TEST(SinglePassSweep, ShardedByteModeReportsBytes) {
  // Byte accounting folded into the worker's block-apply sweep: the epoch
  // report's bytes equal the exact sum of ingested packet sizes.
  ShardedFcmFramework::Options options;
  options.framework = sweep_options();
  options.framework.count_mode = FcmFramework::CountMode::kBytes;
  options.metrics = nullptr;
  options.shard_count = 2;
  ShardedFcmFramework sharded(options);

  const auto keys = skewed_keys(3000, 151, 400);
  std::mt19937_64 rng(152);
  std::vector<Packet> packets;
  std::uint64_t total_bytes = 0;
  packets.reserve(keys.size());
  for (const FlowKey key : keys) {
    const auto bytes = static_cast<std::uint32_t>(40 + rng() % 1460);
    packets.push_back({key, bytes, 0});
    total_bytes += bytes;
  }
  sharded.ingest(std::span<const Packet>(packets));
  const auto report = sharded.wait_epoch(sharded.rotate_async());
  EXPECT_EQ(report.bytes, total_bytes);
  EXPECT_EQ(report.packets, packets.size());
}

TEST(BatchEquivalence, ShardedAdaptiveFlushStillBitExact) {
  // A 1ns deadline forces a partial-block publish at EVERY ingest call — the
  // maximally adversarial flush schedule. Early publication must be a pure
  // latency change: merged state identical to the batch-only run and to
  // serial.
  const auto keys = skewed_keys(5000, 321, 900);
  ShardedFcmFramework::Options options;
  options.framework.fcm = small_config();
  options.framework.metrics = nullptr;
  options.metrics = nullptr;
  options.shard_count = 4;
  options.flush_interval = std::chrono::nanoseconds(1);
  ShardedFcmFramework sharded(options);

  std::span<const FlowKey> rest(keys);
  while (!rest.empty()) {
    const std::size_t n = std::min<std::size_t>(17, rest.size());
    sharded.ingest(rest.subspan(0, n));
    rest = rest.subspan(n);
  }
  sharded.rotate();

  FcmFramework::Options serial_options = options.framework;
  FcmFramework serial(serial_options);
  serial.process_batch(std::span<const FlowKey>(keys));
  expect_trees_identical(serial.sketch(), sharded.merged_epoch(0).sketch());
}

}  // namespace
