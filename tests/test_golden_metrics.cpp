// Golden-snapshot regression tests (DESIGN.md §8, testing).
//
// One fixed-seed synthetic trace runs through the full stack
// (FcmFramework ingest -> EM -> entropy/cardinality) and the resulting
// accuracy metrics are pinned against golden values with tolerance bands.
// The bands are wide enough for cross-platform libm noise (a few percent)
// but tight enough that an accuracy regression — a broken hash, a botched
// EM update, a miscounted stage — trips immediately.
//
// The second half pins the observability pipeline: the fcm.metrics.v1 JSON
// snapshot schema and the Prometheus text exposition, so downstream
// dashboards can rely on the exporter formats.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "datapath/cached_framework.h"
#include "datapath/capture_ingest.h"
#include "flow/synthetic.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"

namespace fcm {
namespace {

// Everything fixed: trace seed, sketch seed, geometry, EM iterations.
constexpr std::uint64_t kTraceSeed = 20201204;
constexpr std::size_t kPackets = 1 << 16;
constexpr std::size_t kFlows = 8'000;
constexpr std::uint64_t kSketchSeed = 0x5555aaaa;

// Golden values measured from the pinned configuration above (single run,
// fully deterministic; see EXPERIMENTS.md "Observability" for the recording
// procedure). Bands are relative; "worse" means larger error.
// Re-recorded when table-index reduction switched from modulo to Lemire
// fast-range (DESIGN.md §9) — same hash quality, different leaf mappings.
constexpr double kGoldenWmre = 0.01983043396;
constexpr double kGoldenAre = 0.01349049240;
constexpr double kGoldenEntropyRelErr = 0.00058382545;
constexpr double kGoldenCardinalityRelErr = 0.00518509403;

flow::Trace golden_trace() {
  flow::SyntheticTraceConfig config;
  config.packet_count = kPackets;
  config.flow_count = kFlows;
  config.seed = kTraceSeed;
  return flow::SyntheticTraceGenerator(config).generate();
}

framework::FcmFramework golden_framework() {
  framework::FcmFramework::Options options;
  options.fcm =
      core::FcmConfig::for_memory(150'000, 2, 8, {8, 16, 32}, kSketchSeed);
  options.em.max_iterations = 5;
  return framework::FcmFramework(options);
}

struct GoldenRun {
  double wmre = 0.0;
  double are = 0.0;
  double entropy_rel_error = 0.0;
  double cardinality_rel_error = 0.0;
};

GoldenRun run_golden_pipeline() {
  const flow::Trace trace = golden_trace();
  const flow::GroundTruth truth(trace);

  framework::FcmFramework framework = golden_framework();
  for (const flow::Packet& packet : trace.packets()) {
    framework.process(packet.key);
  }
  const framework::FcmFramework::Report report = framework.analyze();

  GoldenRun run;
  run.wmre = report.fsd.wmre(truth.flow_size_distribution());
  double are = 0.0;
  for (const auto& [key, size] : truth.flow_sizes()) {
    const double estimate = static_cast<double>(framework.flow_size(key));
    are += std::abs(estimate - static_cast<double>(size)) /
           static_cast<double>(size);
  }
  run.are = are / static_cast<double>(truth.flow_count());
  run.entropy_rel_error =
      std::abs(report.entropy - truth.entropy()) / truth.entropy();
  run.cardinality_rel_error =
      std::abs(report.cardinality - static_cast<double>(truth.flow_count())) /
      static_cast<double>(truth.flow_count());
  return run;
}

// The pipeline is deterministic, so one shared run feeds every golden check
// (and seeds the registry for the exporter-schema tests below).
const GoldenRun& golden_run() {
  static const GoldenRun run = run_golden_pipeline();
  return run;
}

void expect_band(double value, double golden, double rel_band,
                 const char* what) {
  ASSERT_TRUE(std::isfinite(value)) << what;
  ASSERT_GT(golden, 0.0) << what << ": golden value not recorded yet; actual "
                         << value;
  EXPECT_LE(value, golden * (1.0 + rel_band))
      << what << " regressed: got " << value << ", golden " << golden;
  // Dramatic improvement is suspicious too (usually a broken evaluator, not
  // a better sketch): flag anything below a tenth of the golden.
  EXPECT_GE(value, golden * 0.1)
      << what << " implausibly small: got " << value << ", golden " << golden
      << " (update the golden if this is a real accuracy win)";
}

// --- accuracy goldens --------------------------------------------------------

TEST(GoldenMetrics, FlowSizeWmre) {
  expect_band(golden_run().wmre, kGoldenWmre, 0.15, "FSD WMRE");
}

TEST(GoldenMetrics, FlowSizeAre) {
  expect_band(golden_run().are, kGoldenAre, 0.15, "flow-size ARE");
}

TEST(GoldenMetrics, EntropyRelativeError) {
  expect_band(golden_run().entropy_rel_error, kGoldenEntropyRelErr, 0.25,
              "entropy relative error");
}

TEST(GoldenMetrics, CardinalityRelativeError) {
  expect_band(golden_run().cardinality_rel_error, kGoldenCardinalityRelErr,
              0.25, "cardinality relative error");
}

// --- fixture-capture goldens -------------------------------------------------
//
// The committed pcap fixture (tests/data/fixture.pcap, regenerated bit-exactly
// by tools/make_pcap_fixture.py) runs through the REAL datapath — pcap reader,
// hostile-input parser, heavy-flow cache, FcmFramework — and the end-to-end
// accuracy lands in the same golden bands machinery as the synthetic trace.
// This pins the whole capture-to-metrics pipeline, not just the sketch.

constexpr double kFixtureWmre = 0.00218366857;
constexpr double kFixtureCardinalityRelErr = 0.00166779907;

GoldenRun run_fixture_pipeline() {
  const datapath::DecodedCapture decoded = datapath::load_capture(
      std::string(FCM_TEST_DATA_DIR) + "/fixture.pcap");
  const flow::GroundTruth truth(decoded.trace);

  datapath::CachedFramework::Options options;
  options.framework.fcm =
      core::FcmConfig::for_memory(150'000, 2, 8, {8, 16, 32}, kSketchSeed);
  options.framework.em.max_iterations = 5;
  options.metrics = nullptr;  // keep the exporter-schema tests unpolluted
  datapath::CachedFramework framework(options);
  for (const flow::Packet& packet : decoded.trace.packets()) {
    framework.process(packet.key);
  }
  const framework::FcmFramework::Report report = framework.analyze();

  GoldenRun run;
  run.wmre = report.fsd.wmre(truth.flow_size_distribution());
  double are = 0.0;
  for (const auto& [key, size] : truth.flow_sizes()) {
    const double estimate = static_cast<double>(framework.flow_size(key));
    are += std::abs(estimate - static_cast<double>(size)) /
           static_cast<double>(size);
  }
  run.are = are / static_cast<double>(truth.flow_count());
  run.cardinality_rel_error =
      std::abs(report.cardinality - static_cast<double>(truth.flow_count())) /
      static_cast<double>(truth.flow_count());
  return run;
}

const GoldenRun& fixture_run() {
  static const GoldenRun run = run_fixture_pipeline();
  return run;
}

TEST(GoldenFixture, CaptureDecodesDeterministically) {
  const datapath::DecodedCapture decoded = datapath::load_capture(
      std::string(FCM_TEST_DATA_DIR) + "/fixture.pcap");
  // The generator commits to these totals; a fixture or reader change that
  // shifts them silently would invalidate the golden bands below.
  EXPECT_EQ(decoded.stats.capture.records, 1150u);
  EXPECT_EQ(decoded.stats.parsed, decoded.trace.size());
  EXPECT_GT(decoded.stats.parse_failures(), 0u);  // ARP frames, by design
  EXPECT_LT(decoded.stats.parse_failures(), decoded.stats.capture.records / 10);
}

TEST(GoldenFixture, FlowSizeWmre) {
  // The fixture is tiny (~1.1k packets over ~240 flows), so the FSD estimate
  // is driven by EM over a nearly-empty sketch; the band still trips on
  // hash/EM/decode regressions.
  expect_band(fixture_run().wmre, kFixtureWmre, 0.15, "fixture FSD WMRE");
}

TEST(GoldenFixture, FlowSizeAreIsExactlyZero) {
  // Every fixture flow fits in the default cache (240 flows, 8192 entries)
  // and nothing is ever demoted, so the combined view answers every query
  // from the exact path: ARE is identically zero. Any nonzero value means
  // the cache started spilling traffic it used to absorb.
  EXPECT_EQ(fixture_run().are, 0.0)
      << "fixture ARE nonzero: the cache no longer absorbs the whole fixture";
}

TEST(GoldenFixture, CardinalityRelativeError) {
  expect_band(fixture_run().cardinality_rel_error, kFixtureCardinalityRelErr,
              0.25, "fixture cardinality relative error");
}

// --- metrics exporter schema -------------------------------------------------

TEST(GoldenMetrics, JsonSnapshotSchema) {
  golden_run();  // populate the registry via analyze()
  const std::string json = obs::MetricsRegistry::global().snapshot().to_json();

  // Versioned schema header.
  EXPECT_NE(json.find("\"schema\": \"fcm.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": ["), std::string::npos);

  // Control-plane series written by analyze() and the EM loop.
  for (const char* series :
       {"fcm_framework_analyze_total", "fcm_framework_analyze_seconds",
        "fcm_em_runs_total", "fcm_em_iterations_total",
        "fcm_em_iteration_seconds", "fcm_em_convergence_delta"}) {
    EXPECT_NE(json.find(std::string("\"name\": \"") + series + "\""),
              std::string::npos)
        << "missing series " << series;
  }

  // Histogram samples expose cumulative buckets with le edges.
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
}

TEST(GoldenMetrics, PrometheusExposition) {
  golden_run();
  const std::string text =
      obs::MetricsRegistry::global().snapshot().to_prometheus();

  EXPECT_NE(text.find("# TYPE fcm_framework_analyze_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fcm_framework_analyze_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("fcm_framework_analyze_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("fcm_framework_analyze_seconds_count"),
            std::string::npos);
  EXPECT_NE(text.find("fcm_em_runs_total"), std::string::npos);
}

TEST(GoldenMetrics, AnalyzeCountsRuns) {
  golden_run();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  // The shared golden run called analyze() exactly once in this process.
  EXPECT_GE(registry.counter("fcm_framework_analyze_total", {}).value(), 1u);
  EXPECT_GE(registry.counter("fcm_em_iterations_total", {}).value(), 1u);
}

}  // namespace
}  // namespace fcm
