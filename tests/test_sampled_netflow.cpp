#include "sketch/sampled_netflow.h"

#include <gtest/gtest.h>

#include "flow/synthetic.h"
#include "metrics/evaluator.h"

namespace fcm::sketch {
namespace {

TEST(SampledNetFlow, RejectsBadParameters) {
  EXPECT_THROW(SampledNetFlow(0, 100), std::invalid_argument);
  EXPECT_THROW(SampledNetFlow(10, 0), std::invalid_argument);
}

TEST(SampledNetFlow, RateOneIsExact) {
  SampledNetFlow netflow(1, 1024);
  for (int i = 0; i < 500; ++i) netflow.update(flow::FlowKey{3});
  EXPECT_EQ(netflow.query(flow::FlowKey{3}), 500u);
  EXPECT_EQ(netflow.query(flow::FlowKey{4}), 0u);
}

TEST(SampledNetFlow, EstimatesScaleBySamplingRate) {
  SampledNetFlow netflow(100, 4096, 7);
  for (int i = 0; i < 200'000; ++i) netflow.update(flow::FlowKey{9});
  // ~2000 samples scaled by 100.
  EXPECT_NEAR(static_cast<double>(netflow.query(flow::FlowKey{9})), 200'000.0,
              20'000.0);
}

TEST(SampledNetFlow, SmallFlowsUsuallyInvisible) {
  SampledNetFlow netflow(1000, 65536, 11);
  for (std::uint32_t f = 1; f <= 1000; ++f) {
    for (int i = 0; i < 3; ++i) netflow.update(flow::FlowKey{f});
  }
  // 3000 packets at 1/1000: only a handful of the 1000 flows get sampled.
  EXPECT_LT(netflow.tracked_flows(), 20u);
}

TEST(SampledNetFlow, FullCacheStopsAdmitting) {
  SampledNetFlow netflow(1, 4);
  for (std::uint32_t f = 1; f <= 10; ++f) netflow.update(flow::FlowKey{f});
  EXPECT_EQ(netflow.tracked_flows(), 4u);
  // Tracked flows keep counting.
  netflow.update(flow::FlowKey{1});
  EXPECT_EQ(netflow.query(flow::FlowKey{1}), 2u);
  // Untracked flows read zero.
  EXPECT_EQ(netflow.query(flow::FlowKey{10}), 0u);
}

TEST(SampledNetFlow, MemoryAndName) {
  const SampledNetFlow netflow = SampledNetFlow::for_memory(16'000, 100);
  EXPECT_EQ(netflow.memory_bytes(), 16'000u);
  EXPECT_EQ(netflow.name(), "NetFlow(1/100)");
}

TEST(SampledNetFlow, ClearResets) {
  SampledNetFlow netflow(1, 64);
  netflow.update(flow::FlowKey{5});
  netflow.clear();
  EXPECT_EQ(netflow.query(flow::FlowKey{5}), 0u);
  EXPECT_EQ(netflow.tracked_flows(), 0u);
}

TEST(SampledNetFlow, MuchWorseThanExactOnSmallFlows) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 300'000;
  config.flow_count = 30'000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  SampledNetFlow netflow = SampledNetFlow::for_memory(100'000, 1000);
  metrics::feed(netflow, trace);
  const auto errors = metrics::evaluate_sizes(netflow, truth);
  // Small flows read as zero: ARE near 1 (100% relative error) or worse.
  EXPECT_GT(errors.are, 0.8);
}

}  // namespace
}  // namespace fcm::sketch
