// Tests for Count-Sketch, MRAC, PyramidSketch (PCM), HashPipe and the
// cardinality estimators.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/synthetic.h"
#include "metrics/evaluator.h"
#include "sketch/cardinality.h"
#include "sketch/count_sketch.h"
#include "sketch/hashpipe.h"
#include "sketch/mrac.h"
#include "sketch/pyramid_sketch.h"

namespace fcm::sketch {
namespace {

// --- Count-Sketch ---------------------------------------------------------

TEST(CountSketch, SingleFlowExact) {
  CountSketch cs(5, 1024);
  cs.add(flow::FlowKey{1}, 100);
  EXPECT_EQ(cs.query(flow::FlowKey{1}), 100u);
}

TEST(CountSketch, NegativeEstimatesClampToZeroInUnsignedQuery) {
  CountSketch cs(1, 4, 3);
  // Find two keys in the same cell with opposite signs.
  cs.add(flow::FlowKey{1}, 50);
  for (std::uint32_t k = 2; k < 100; ++k) {
    CountSketch probe(1, 4, 3);
    probe.add(flow::FlowKey{k}, 1);
    // regardless: unsigned query never underflows
    EXPECT_GE(probe.query(flow::FlowKey{k}), 0u);
  }
  EXPECT_GE(cs.signed_query(flow::FlowKey{1}), 0);
}

TEST(CountSketch, MedianAbsorbsOutliers) {
  CountSketch cs(5, 2048, 11);
  cs.add(flow::FlowKey{42}, 1000);
  for (std::uint32_t k = 100; k < 2000; ++k) cs.add(flow::FlowKey{k}, 1);
  const auto est = static_cast<double>(cs.query(flow::FlowKey{42}));
  EXPECT_NEAR(est, 1000.0, 50.0);
}

TEST(CountSketch, L2SquaredTracksTrueNorm) {
  CountSketch cs(5, 8192, 13);
  double true_l2 = 0.0;
  for (std::uint32_t k = 1; k <= 300; ++k) {
    const std::int64_t count = 1 + (k % 17);
    cs.add(flow::FlowKey{k}, count);
    true_l2 += static_cast<double>(count) * count;
  }
  EXPECT_NEAR(cs.l2_squared(), true_l2, true_l2 * 0.15);
}

TEST(CountSketch, RejectsBadGeometry) {
  EXPECT_THROW(CountSketch(0, 4), std::invalid_argument);
  EXPECT_THROW(CountSketch(4, 0), std::invalid_argument);
}

// --- MRAC -------------------------------------------------------------------

TEST(Mrac, SingleArraySemantics) {
  Mrac mrac(1024, 3);
  for (int i = 0; i < 10; ++i) mrac.update(flow::FlowKey{5});
  EXPECT_GE(mrac.query(flow::FlowKey{5}), 10u);
  EXPECT_EQ(mrac.memory_bytes(), 4096u);
}

TEST(Mrac, CountersSumToPackets) {
  Mrac mrac(512, 3);
  for (std::uint32_t i = 0; i < 5000; ++i) mrac.update(flow::FlowKey{i % 97 + 1});
  std::uint64_t total = 0;
  for (const auto v : mrac.counters()) total += v;
  EXPECT_EQ(total, 5000u);
}

TEST(Mrac, ForMemoryAndClear) {
  Mrac mrac = Mrac::for_memory(40'000);
  EXPECT_EQ(mrac.width(), 10'000u);
  mrac.update(flow::FlowKey{1});
  mrac.clear();
  EXPECT_EQ(mrac.query(flow::FlowKey{1}), 0u);
}

// --- PyramidSketch (PCM) ---------------------------------------------------

class PyramidExactTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PyramidExactTest, LoneFlowReconstructsExactly) {
  // Without collisions the hierarchical carry encoding is lossless.
  PyramidCmSketch pcm(4, 1 << 14, 21);
  const flow::FlowKey key{1234};
  for (std::uint64_t i = 0; i < GetParam(); ++i) pcm.update(key);
  EXPECT_EQ(pcm.query(key), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Counts, PyramidExactTest,
                         ::testing::Values(1, 15, 16, 17, 63, 64, 100, 255, 256,
                                           1000, 5000));

TEST(PyramidCmSketch, NeverUnderestimatesOnTraffic) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 60000;
  config.flow_count = 5000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  PyramidCmSketch pcm = PyramidCmSketch::for_memory(200'000);
  metrics::feed(pcm, trace);
  std::size_t under = 0;
  for (const auto& [key, size] : truth.flow_sizes()) {
    if (pcm.query(key) < size) ++under;
  }
  // Pyramid's shared counting bits can in rare cases underestimate when the
  // climb stops early; it must stay a rare event.
  EXPECT_LE(under, truth.flow_count() / 100);
}

TEST(PyramidCmSketch, RejectsBadGeometry) {
  EXPECT_THROW(PyramidCmSketch(0, 64), std::invalid_argument);
  EXPECT_THROW(PyramidCmSketch(4, 1), std::invalid_argument);
}

// --- HashPipe ----------------------------------------------------------------

TEST(HashPipe, TracksSingleHeavyFlow) {
  HashPipe hp(6, 512);
  for (int i = 0; i < 1000; ++i) hp.update(flow::FlowKey{9});
  EXPECT_EQ(hp.query(flow::FlowKey{9}), 1000u);
  const auto flows = hp.tracked_flows();
  EXPECT_EQ(flows.at(flow::FlowKey{9}), 1000u);
}

TEST(HashPipe, HeavyHittersSurviveChurn) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 200000;
  config.flow_count = 20000;
  config.zipf_alpha = 1.3;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  HashPipe hp = HashPipe::for_memory(100'000);
  metrics::feed(hp, trace);
  const std::uint64_t threshold = metrics::heavy_hitter_threshold(truth);
  const auto true_heavy = truth.heavy_hitters(threshold);
  ASSERT_FALSE(true_heavy.empty());
  std::size_t found = 0;
  const auto tracked = hp.tracked_flows();
  for (const flow::FlowKey key : true_heavy) {
    if (tracked.contains(key) && tracked.at(key) >= threshold / 2) ++found;
  }
  EXPECT_GE(found, true_heavy.size() * 9 / 10);
}

TEST(HashPipe, MemoryAccounting) {
  EXPECT_EQ(HashPipe(6, 100).memory_bytes(), 4800u);
  EXPECT_EQ(HashPipe::for_memory(48'000).memory_bytes(), 48'000u);
}

// --- Linear counting / HyperLogLog ------------------------------------------

class CardinalityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CardinalityTest, LinearCountingWithinFivePercent) {
  const std::size_t n = GetParam();
  LinearCounting lc(8 * n + 64);
  for (std::uint32_t i = 0; i < n; ++i) lc.update(flow::FlowKey{i * 2654435761u + 1});
  EXPECT_NEAR(lc.estimate(), static_cast<double>(n), std::max(8.0, n * 0.05));
}

TEST_P(CardinalityTest, HyperLogLogWithinTenPercent) {
  const std::size_t n = GetParam();
  HyperLogLog hll(4096);
  for (std::uint32_t i = 0; i < n; ++i) hll.update(flow::FlowKey{i * 2654435761u + 1});
  EXPECT_NEAR(hll.estimate(), static_cast<double>(n), std::max(16.0, n * 0.10));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CardinalityTest,
                         ::testing::Values(10, 100, 1000, 10000, 100000));

TEST(LinearCounting, DuplicatesDoNotInflate) {
  LinearCounting lc(1024);
  for (int i = 0; i < 1000; ++i) lc.update(flow::FlowKey{42});
  EXPECT_NEAR(lc.estimate(), 1.0, 0.51);
}

TEST(HyperLogLog, RejectsBadRegisterCount) {
  EXPECT_THROW(HyperLogLog(15), std::invalid_argument);
  EXPECT_THROW(HyperLogLog(100), std::invalid_argument);  // not a power of two
}

TEST(HyperLogLog, ClearResets) {
  HyperLogLog hll(64);
  for (std::uint32_t i = 1; i < 100; ++i) hll.update(flow::FlowKey{i});
  hll.clear();
  EXPECT_LT(hll.estimate(), 1.0);
}

}  // namespace
}  // namespace fcm::sketch
