// Conservative-update FCM (the paper's footnote-3 extension).
#include <gtest/gtest.h>

#include "fcm/fcm_sketch.h"
#include "flow/synthetic.h"
#include "metrics/metrics.h"
#include "pisa/fcm_p4.h"

namespace fcm::core {
namespace {

FcmConfig small_config(std::uint64_t seed = 0xfc) {
  FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 8 * 8 * 32;
  config.seed = seed;
  return config;
}

TEST(FcmConservativeUpdate, SingleFlowExact) {
  FcmSketch sketch(small_config());
  for (std::uint64_t i = 1; i <= 2000; ++i) {
    EXPECT_EQ(sketch.update_conservative(flow::FlowKey{5}), i);
  }
  EXPECT_EQ(sketch.query(flow::FlowKey{5}), 2000u);
}

class FcmCuPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FcmCuPropertyTest, NeverUnderestimates) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 120000;
  config.flow_count = 15000;
  config.seed = GetParam();
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  FcmSketch sketch(small_config(GetParam()));
  for (const flow::Packet& p : trace.packets()) sketch.update_conservative(p.key);
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(sketch.query(key), size);
  }
}

TEST_P(FcmCuPropertyTest, DominatesPlainUpdate) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 120000;
  config.flow_count = 15000;
  config.seed = GetParam() + 50;
  const flow::Trace trace = flow::SyntheticTraceGenerator(config).generate();
  const flow::GroundTruth truth(trace);
  FcmSketch plain(small_config(7));
  FcmSketch conservative(small_config(7));
  for (const flow::Packet& p : trace.packets()) {
    plain.update(p.key);
    conservative.update_conservative(p.key);
  }
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_LE(conservative.query(key), plain.query(key));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FcmCuPropertyTest, ::testing::Values(1, 2, 3));

TEST(FcmConservativeUpdate, ImprovesAreOnSkewedTraffic) {
  const flow::Trace trace = flow::SyntheticTraceGenerator::zipf(1.1, 0.005, 9);
  const flow::GroundTruth truth(trace);
  FcmSketch plain(small_config(3));
  FcmSketch conservative(small_config(3));
  for (const flow::Packet& p : trace.packets()) {
    plain.update(p.key);
    conservative.update_conservative(p.key);
  }
  const auto plain_err = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey k) { return plain.query(k); });
  const auto cu_err = metrics::size_errors(
      truth.flow_sizes(), [&](flow::FlowKey k) { return conservative.query(k); });
  EXPECT_LT(cu_err.are, plain_err.are);
}

TEST(FcmConservativeUpdate, TracksHeavyHitters) {
  FcmSketch sketch(small_config());
  sketch.set_heavy_hitter_threshold(50);
  for (int i = 0; i < 100; ++i) sketch.update_conservative(flow::FlowKey{1});
  EXPECT_TRUE(sketch.heavy_hitters().contains(flow::FlowKey{1}));
}

// --- TCAM cardinality on the P4 program -------------------------------------

TEST(FcmP4Cardinality, TcamMatchesExactWithinBudget) {
  pisa::FcmP4Program program(small_config(11));
  for (std::uint32_t i = 1; i <= 500; ++i) {
    program.update(flow::FlowKey{i * 2654435761u});
  }
  const double tcam = program.estimate_cardinality_tcam();
  EXPECT_NEAR(tcam, 500.0, 500.0 * 0.08 + 5.0);
  // Table is orders smaller than a per-w0 table.
  EXPECT_LT(program.cardinality_table().entry_count(),
            program.config().leaf_count);
}

}  // namespace
}  // namespace fcm::core
