// Wire-format suite (DESIGN.md §11): round-trips for every sketch type,
// the hostile-input battery for the deserializers, and seeded property
// tests (tests/property_harness.h) pinning that serialize→deserialize→
// merge() is bit-exact with the all-in-memory merge for N∈{1,2,4,8}
// vantage points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "agg/wire.h"
#include "common/contracts.h"
#include "fcm/fcm_sketch.h"
#include "fcm/fcm_topk.h"
#include "flow/flow_key.h"
#include "framework/fcm_framework.h"
#include "property_harness.h"
#include "sketch/cardinality.h"
#include "sketch/cm_sketch.h"
#include "sketch/topk_filter.h"

namespace fcm {
namespace {

using agg::WireCodec;
using agg::WireHeader;
using agg::WireType;
using common::ContractViolation;
using proptest::random_keys;
using proptest::small_fcm_config;

constexpr std::uint64_t kSeed = 0xfca9;
constexpr std::size_t kTraceLength = 20'000;
constexpr std::uint32_t kUniverse = 1'500;

framework::FcmFramework::Options plain_options(std::uint64_t seed = kSeed) {
  framework::FcmFramework::Options options;
  options.fcm = small_fcm_config(seed);
  options.heavy_hitter_threshold = 64;
  options.metrics = nullptr;
  return options;
}

framework::FcmFramework::Options topk_options(std::uint64_t seed = kSeed) {
  framework::FcmFramework::Options options = plain_options(seed);
  options.topk_entries = 64;
  return options;
}

// --- round-trips ------------------------------------------------------------

TEST(WireRoundTrip, FcmTreeIsBitExact) {
  core::FcmTree tree(small_fcm_config(kSeed), common::make_hash(kSeed, 0));
  for (const flow::FlowKey key : random_keys(kSeed, kTraceLength, kUniverse)) {
    tree.add(key);
  }
  const std::vector<std::byte> wire = WireCodec::serialize(tree);
  const core::FcmTree restored = WireCodec::deserialize_tree(wire);
  restored.check_invariants();
  for (std::uint32_t id = 0; id < kUniverse; ++id) {
    const flow::FlowKey key{id};
    ASSERT_EQ(tree.query(key), restored.query(key)) << "key " << id;
  }
  EXPECT_EQ(tree.overflow_promotion_count(),
            restored.overflow_promotion_count());
  // Canonical encoding: re-serializing the restored object reproduces the
  // exact bytes.
  EXPECT_EQ(wire, WireCodec::serialize(restored));
}

TEST(WireRoundTrip, FcmSketchIsBitExact) {
  core::FcmSketch sketch(small_fcm_config(kSeed));
  sketch.set_heavy_hitter_threshold(64);
  for (const flow::FlowKey key : random_keys(kSeed, kTraceLength, kUniverse)) {
    sketch.update(key);
  }
  const std::vector<std::byte> wire = WireCodec::serialize(sketch);
  const core::FcmSketch restored = WireCodec::deserialize_sketch(wire);
  restored.check_invariants();
  for (std::uint32_t id = 0; id < kUniverse; ++id) {
    const flow::FlowKey key{id};
    ASSERT_EQ(sketch.query(key), restored.query(key)) << "key " << id;
  }
  EXPECT_EQ(sketch.estimate_cardinality(), restored.estimate_cardinality());
  EXPECT_EQ(sketch.heavy_hitters(), restored.heavy_hitters());
  EXPECT_EQ(wire, WireCodec::serialize(restored));
}

TEST(WireRoundTrip, CmAndCuSketchAreBitExact) {
  sketch::CmSketch cm(3, 4096, kSeed);
  sketch::CuSketch cu(3, 4096, kSeed);
  for (const flow::FlowKey key : random_keys(kSeed, kTraceLength, kUniverse)) {
    cm.update(key);
    cu.update(key);
  }
  const auto cm_wire = WireCodec::serialize(cm);
  const auto cu_wire = WireCodec::serialize(cu);
  // The two subclasses get distinct type tags from the same overload.
  EXPECT_EQ(WireCodec::peek(cm_wire).type, WireType::kCmSketch);
  EXPECT_EQ(WireCodec::peek(cu_wire).type, WireType::kCuSketch);
  const sketch::CmSketch restored_cm = WireCodec::deserialize_cm(cm_wire);
  const sketch::CuSketch restored_cu = WireCodec::deserialize_cu(cu_wire);
  restored_cm.check_invariants();
  restored_cu.check_invariants();
  for (std::uint32_t id = 0; id < kUniverse; ++id) {
    const flow::FlowKey key{id};
    ASSERT_EQ(cm.query(key), restored_cm.query(key)) << "key " << id;
    ASSERT_EQ(cu.query(key), restored_cu.query(key)) << "key " << id;
  }
  EXPECT_EQ(cm_wire, WireCodec::serialize(restored_cm));
  EXPECT_EQ(cu_wire, WireCodec::serialize(restored_cu));
}

TEST(WireRoundTrip, TopKFilterIsBitExact) {
  sketch::TopKFilter filter(64, 8, kSeed);
  for (const flow::FlowKey key : random_keys(kSeed, kTraceLength, kUniverse)) {
    (void)filter.offer(key);
  }
  const auto wire = WireCodec::serialize(filter);
  const sketch::TopKFilter restored = WireCodec::deserialize_topk_filter(wire);
  restored.check_invariants();
  for (std::uint32_t id = 0; id < kUniverse; ++id) {
    const flow::FlowKey key{id};
    const auto a = filter.query(key);
    const auto b = restored.query(key);
    ASSERT_EQ(a.has_value(), b.has_value()) << "key " << id;
    if (a.has_value()) {
      EXPECT_EQ(a->count, b->count);
      EXPECT_EQ(a->has_light_part, b->has_light_part);
    }
  }
  EXPECT_EQ(wire, WireCodec::serialize(restored));
}

TEST(WireRoundTrip, FcmTopKIsBitExact) {
  core::FcmTopK topk(proptest::small_topk_config(kSeed));
  topk.set_heavy_hitter_threshold(64);
  for (const flow::FlowKey key : random_keys(kSeed, kTraceLength, kUniverse)) {
    topk.update(key);
  }
  const auto wire = WireCodec::serialize(topk);
  const core::FcmTopK restored = WireCodec::deserialize_fcm_topk(wire);
  restored.check_invariants();
  for (std::uint32_t id = 0; id < kUniverse; ++id) {
    const flow::FlowKey key{id};
    ASSERT_EQ(topk.query(key), restored.query(key)) << "key " << id;
  }
  EXPECT_EQ(topk.topk_flows(), restored.topk_flows());
  EXPECT_EQ(topk.estimate_cardinality(), restored.estimate_cardinality());
  EXPECT_EQ(wire, WireCodec::serialize(restored));
}

TEST(WireRoundTrip, CardinalityRegistersAreBitExact) {
  sketch::LinearCounting lc(4096, kSeed);
  sketch::HyperLogLog hll(1024, kSeed);
  for (const flow::FlowKey key : random_keys(kSeed, kTraceLength, kUniverse)) {
    lc.update(key);
    hll.update(key);
  }
  const auto lc_wire = WireCodec::serialize(lc);
  const auto hll_wire = WireCodec::serialize(hll);
  const sketch::LinearCounting restored_lc =
      WireCodec::deserialize_linear_counting(lc_wire);
  const sketch::HyperLogLog restored_hll =
      WireCodec::deserialize_hll(hll_wire);
  EXPECT_EQ(lc.zero_bits(), restored_lc.zero_bits());
  EXPECT_EQ(lc.estimate(), restored_lc.estimate());
  EXPECT_EQ(hll.estimate(), restored_hll.estimate());
  EXPECT_EQ(lc_wire, WireCodec::serialize(restored_lc));
  EXPECT_EQ(hll_wire, WireCodec::serialize(restored_hll));
}

TEST(WireRoundTrip, FrameworkPlainAndTopKAreBitExact) {
  for (const auto& options : {plain_options(), topk_options()}) {
    framework::FcmFramework fw(options);
    for (const flow::FlowKey key :
         random_keys(kSeed, kTraceLength, kUniverse)) {
      fw.process(key);
    }
    const auto wire = WireCodec::serialize(fw);
    const framework::FcmFramework restored =
        WireCodec::deserialize_framework(wire, nullptr);
    restored.check_invariants();
    for (std::uint32_t id = 0; id < kUniverse; ++id) {
      const flow::FlowKey key{id};
      ASSERT_EQ(fw.flow_size(key), restored.flow_size(key))
          << "key " << id << " topk=" << options.topk_entries;
    }
    EXPECT_EQ(fw.cardinality(), restored.cardinality());
    // analyze() parity: same state + same EM config => identical report.
    const auto a = fw.analyze();
    const auto b = restored.analyze();
    EXPECT_EQ(a.entropy, b.entropy);
    EXPECT_EQ(a.estimated_flows, b.estimated_flows);
    EXPECT_EQ(a.cardinality, b.cardinality);
    EXPECT_EQ(wire, WireCodec::serialize(restored));
  }
}

TEST(WireRoundTrip, EmptyObjectsRoundTrip) {
  const core::FcmSketch sketch(small_fcm_config(kSeed));
  const core::FcmSketch restored =
      WireCodec::deserialize_sketch(WireCodec::serialize(sketch));
  EXPECT_EQ(restored.query(flow::FlowKey{7}), 0u);
  const sketch::TopKFilter filter(8);
  (void)WireCodec::deserialize_topk_filter(WireCodec::serialize(filter));
  const framework::FcmFramework fw(plain_options());
  (void)WireCodec::deserialize_framework(WireCodec::serialize(fw), nullptr);
}

// --- header / fingerprint semantics ----------------------------------------

TEST(WireHeaderTest, PeekReportsTypeVersionFingerprint) {
  const framework::FcmFramework fw(plain_options());
  const auto wire = WireCodec::serialize(fw);
  const WireHeader header = WireCodec::peek(wire);
  EXPECT_EQ(header.version, agg::kWireVersion);
  EXPECT_EQ(header.type, WireType::kFcmFramework);
  EXPECT_EQ(header.fingerprint, WireCodec::merge_fingerprint(fw.options()));
  EXPECT_EQ(header.payload_bytes, wire.size() - 24);
}

TEST(WireHeaderTest, FingerprintTracksMergeCompatibilityOnly) {
  const auto base = plain_options();
  const std::uint64_t fp = WireCodec::merge_fingerprint(base);

  // Local analysis policy must not change the fingerprint...
  auto em_tweaked = base;
  em_tweaked.em.max_iterations = 3;
  em_tweaked.em.thread_count = 4;
  em_tweaked.metrics = nullptr;
  EXPECT_EQ(fp, WireCodec::merge_fingerprint(em_tweaked));

  // ...but every merge-precondition field must.
  auto seed_changed = base;
  seed_changed.fcm.seed ^= 1;
  EXPECT_NE(fp, WireCodec::merge_fingerprint(seed_changed));
  auto geometry_changed = base;
  geometry_changed.fcm.leaf_count *= 2;
  EXPECT_NE(fp, WireCodec::merge_fingerprint(geometry_changed));
  auto threshold_changed = base;
  threshold_changed.heavy_hitter_threshold += 1;
  EXPECT_NE(fp, WireCodec::merge_fingerprint(threshold_changed));
  auto mode_changed = base;
  mode_changed.count_mode = framework::FcmFramework::CountMode::kBytes;
  EXPECT_NE(fp, WireCodec::merge_fingerprint(mode_changed));
  EXPECT_NE(fp, WireCodec::merge_fingerprint(topk_options()));
}

TEST(WireHeaderTest, TypeTagsAreEnforcedAcrossDeserializers) {
  const core::FcmSketch sketch(small_fcm_config(kSeed));
  const auto wire = WireCodec::serialize(sketch);
  EXPECT_THROW((void)WireCodec::deserialize_tree(wire), ContractViolation);
  EXPECT_THROW((void)WireCodec::deserialize_cm(wire), ContractViolation);
  EXPECT_THROW((void)WireCodec::deserialize_framework(wire, nullptr),
               ContractViolation);
  // CM wire is not CU wire: the conservative-update subclass has different
  // merge semantics, so the tags must not alias.
  const sketch::CmSketch cm(2, 64);
  EXPECT_THROW((void)WireCodec::deserialize_cu(WireCodec::serialize(cm)),
               ContractViolation);
}

// --- hostile inputs ---------------------------------------------------------

// Every strict prefix must throw: the header pins the exact payload length,
// so truncation at ANY byte is detectable (and must never read past the
// end — the ASan job enforces the "never UB" half).
TEST(WireHostile, EveryTruncationThrows) {
  core::FcmSketch sketch(small_fcm_config(kSeed));
  sketch.set_heavy_hitter_threshold(8);
  for (const flow::FlowKey key : random_keys(kSeed, 2'000, 200)) {
    sketch.update(key);
  }
  const auto wire = WireCodec::serialize(sketch);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::vector<std::byte> prefix(wire.begin(),
                                        wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)WireCodec::deserialize_sketch(prefix),
                 ContractViolation)
        << "prefix length " << len;
  }
}

TEST(WireHostile, HeaderCorruptionsThrow) {
  const core::FcmSketch sketch(small_fcm_config(kSeed));
  const auto wire = WireCodec::serialize(sketch);
  // Wrong magic, flipped version byte, non-zero reserved byte, unknown type
  // tag, fingerprint flip, and payload-length flip: every header byte is
  // load-bearing, so flipping ANY of the 24 must throw.
  for (std::size_t i = 0; i < 24; ++i) {
    auto corrupt = wire;
    corrupt[i] ^= std::byte{0x40};
    EXPECT_THROW((void)WireCodec::deserialize_sketch(corrupt),
                 ContractViolation)
        << "header byte " << i;
  }
}

// A flipped bit anywhere in the payload must either throw or produce an
// object that still passes its deep invariants — never UB, never a
// structurally broken sketch (fuzz-lite, same posture as test_trace_io).
TEST(WireHostile, PayloadBitFlipsNeverBreakInvariants) {
  core::FcmSketch sketch(small_fcm_config(kSeed));
  sketch.set_heavy_hitter_threshold(8);
  for (const flow::FlowKey key : random_keys(kSeed, 2'000, 200)) {
    sketch.update(key);
  }
  const auto wire = WireCodec::serialize(sketch);
  std::size_t rejected = 0;
  for (std::size_t i = 24; i < wire.size(); ++i) {
    auto corrupt = wire;
    corrupt[i] ^= std::byte{0x01};
    try {
      const core::FcmSketch restored = WireCodec::deserialize_sketch(corrupt);
      restored.check_invariants();
    } catch (const ContractViolation&) {
      ++rejected;
    }
  }
  // The config section, seeds, markers and count fields must all reject;
  // only flips inside plain counter values can legitimately decode.
  EXPECT_GT(rejected, 0u);
}

// Oversized declared counts must be rejected BEFORE any allocation is
// sized from them (the require_payload discipline): a 100-byte buffer
// claiming 2^60 heavy hitters / bitmap bits / CM columns throws instead of
// reserving petabytes. If any of these ever allocated first, the test
// would OOM-kill the suite rather than pass.
TEST(WireHostile, OversizedDeclaredCountsThrowWithoutAllocating) {
  const auto patch_u64 = [](std::vector<std::byte> buf, std::size_t offset,
                            std::uint64_t value) {
    for (std::size_t i = 0; i < 8; ++i) {
      buf[offset + i] = static_cast<std::byte>((value >> (8 * i)) & 0xff);
    }
    return buf;
  };

  // FcmSketch: hh_count is the 16..8 bytes from the end (followed only by
  // the u64 cardinality-saturations field).
  core::FcmSketch sketch(small_fcm_config(kSeed));
  sketch.set_heavy_hitter_threshold(8);
  const auto sketch_wire = WireCodec::serialize(sketch);
  EXPECT_THROW((void)WireCodec::deserialize_sketch(patch_u64(
                   sketch_wire, sketch_wire.size() - 16, 1ull << 60)),
               ContractViolation);

  // FcmConfig leaf_count: payload offset 8 (after tree_count + k), i.e.
  // buffer offset 24 + 8. A giant tree would dwarf the buffer.
  EXPECT_THROW(
      (void)WireCodec::deserialize_sketch(patch_u64(sketch_wire, 32, 1ull << 40)),
      ContractViolation);

  // CmSketch: width is at payload offset 4 (after u32 depth).
  const sketch::CmSketch cm(2, 64);
  const auto cm_wire = WireCodec::serialize(cm);
  EXPECT_THROW(
      (void)WireCodec::deserialize_cm(patch_u64(cm_wire, 24 + 4, 1ull << 60)),
      ContractViolation);

  // LinearCounting: bit count at payload offset 4 (after u32 hash seed).
  const sketch::LinearCounting lc(512);
  const auto lc_wire = WireCodec::serialize(lc);
  EXPECT_THROW((void)WireCodec::deserialize_linear_counting(
                   patch_u64(lc_wire, 24 + 4, 1ull << 60)),
               ContractViolation);

  // TopKFilter: entry count at payload offset 8 (after seed + lambda).
  const sketch::TopKFilter filter(8);
  const auto filter_wire = WireCodec::serialize(filter);
  EXPECT_THROW((void)WireCodec::deserialize_topk_filter(
                   patch_u64(filter_wire, 24 + 8, 1ull << 60)),
               ContractViolation);
}

TEST(WireHostile, EmptyAndGarbageBuffersThrow) {
  EXPECT_THROW((void)WireCodec::peek({}), ContractViolation);
  std::vector<std::byte> garbage(64, std::byte{0xa5});
  EXPECT_THROW((void)WireCodec::peek(garbage), ContractViolation);
  EXPECT_THROW((void)WireCodec::deserialize_framework(garbage, nullptr),
               ContractViolation);
}

// --- round-trip + merge properties ------------------------------------------

// Bit-exact network-wide merge through the wire: split the trace across N
// vantage points, round-trip every replica through serialize/deserialize,
// merge the restored replicas, and compare every flow estimate (plus
// cardinality and heavy hitters) against merging the in-memory replicas.
proptest::Property wire_merge_bit_exact(std::size_t vantage_count,
                                        bool with_topk, std::uint64_t seed) {
  return [=](const std::vector<flow::FlowKey>& keys)
             -> std::optional<proptest::Counterexample> {
    const auto options = with_topk ? topk_options(seed) : plain_options(seed);
    std::vector<framework::FcmFramework> replicas(vantage_count,
                                                  framework::FcmFramework(options));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      replicas[i % vantage_count].process(keys[i]);
    }

    framework::FcmFramework in_memory(options);
    framework::FcmFramework via_wire(options);
    for (std::size_t v = 0; v < vantage_count; ++v) {
      in_memory.merge(replicas[v]);
      const framework::FcmFramework restored = WireCodec::deserialize_framework(
          WireCodec::serialize(replicas[v]), nullptr);
      via_wire.merge(restored);
    }

    for (const flow::FlowKey key : keys) {
      const std::uint64_t expected = in_memory.flow_size(key);
      const std::uint64_t estimate = via_wire.flow_size(key);
      if (estimate != expected) {
        return proptest::Counterexample{key, estimate, expected};
      }
    }
    if (in_memory.cardinality() != via_wire.cardinality()) {
      return proptest::Counterexample{flow::FlowKey{0}, 0, 1};
    }
    auto hh_a = in_memory.heavy_hitters();
    auto hh_b = via_wire.heavy_hitters();
    std::sort(hh_a.begin(), hh_a.end());
    std::sort(hh_b.begin(), hh_b.end());
    if (hh_a != hh_b) return proptest::Counterexample{flow::FlowKey{0}, 0, 2};
    return std::nullopt;
  };
}

class WireMergeProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(WireMergeProperty, PlainFrameworkBitExactAcrossVantages) {
  const auto [vantages, seed] = GetParam();
  proptest::expect_property(wire_merge_bit_exact(vantages, false, seed), seed,
                            12'000, kUniverse,
                            "wire round-trip + merge (plain FCM)");
}

TEST_P(WireMergeProperty, TopKFrameworkBitExactAcrossVantages) {
  const auto [vantages, seed] = GetParam();
  proptest::expect_property(wire_merge_bit_exact(vantages, true, seed), seed,
                            12'000, kUniverse,
                            "wire round-trip + merge (FCM+TopK)");
}

INSTANTIATE_TEST_SUITE_P(
    Vantages, WireMergeProperty,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8}),
                       ::testing::Values(7ull, 0xbeefull)));

}  // namespace
}  // namespace fcm
