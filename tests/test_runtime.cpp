// Tests for the sharded ingestion runtime (src/runtime/) and its SPSC ring.
//
// The headline property (ISSUE acceptance criterion): merged N-shard count
// queries are bit-exact equal to a serial FcmSketch fed the same fixed-seed
// trace, for N in {1, 2, 4, 8}. Also covered: the lock-free SpscQueue in
// isolation and across threads, epoch double-buffering (two back-to-back
// windows each serial-equivalent), non-stalling rotate_async, heavy-hitter
// re-qualification across shards at runtime level, byte mode, TopK mode,
// backpressure under a tiny ring, teardown discipline, and option
// validation via contracts.
//
// CI runs this binary under TSan (FCM_SANITIZE=thread): every cross-thread
// handoff in the runtime is exercised here.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <random>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/block_queue.h"
#include "common/contracts.h"
#include "common/spsc_queue.h"
#include "flow/flow_key.h"
#include "flow/packet.h"
#include "framework/fcm_framework.h"
#include "obs/metrics_registry.h"
#include "runtime/sharded_framework.h"

namespace {

using fcm::common::BlockQueue;
using fcm::common::ContractViolation;
using fcm::common::SpscQueue;
using fcm::core::FcmConfig;
using fcm::flow::FlowKey;
using fcm::flow::Packet;
using fcm::framework::FcmFramework;
using fcm::runtime::ShardedFcmFramework;

// --- shared fixtures --------------------------------------------------------

// Small but multi-level FCM geometry: cheap enough for TSan, deep enough
// that the fixed traces push counters through stage-1 and stage-2 overflow.
FcmConfig small_config() {
  FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 4096;
  config.seed = 0x5555aaaa;
  return config;
}

FcmFramework::Options small_framework_options() {
  FcmFramework::Options options;
  options.fcm = small_config();
  options.em.max_iterations = 3;  // keep analyze() affordable in tests
  return options;
}

// Deterministic skewed trace: `flows` flows, geometric-ish sizes, plus one
// jumbo flow that overflows the 8-bit stage thousands of times over.
std::vector<Packet> fixed_trace(std::uint64_t seed, std::size_t packets = 40000,
                                std::size_t flows = 2000) {
  std::mt19937_64 rng(seed);
  std::vector<FlowKey> keys;
  keys.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    keys.push_back(FlowKey{static_cast<std::uint32_t>(rng())});
  }
  std::vector<Packet> trace;
  trace.reserve(packets + 500);
  // Zipf-ish: flow i gets weight ~ 1/(i+1).
  std::vector<double> weights(flows);
  for (std::size_t i = 0; i < flows; ++i) weights[i] = 1.0 / static_cast<double>(i + 1);
  std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
  std::uniform_int_distribution<std::uint32_t> bytes(40, 1500);
  for (std::size_t p = 0; p < packets; ++p) {
    trace.push_back(Packet{keys[pick(rng)], bytes(rng), p});
  }
  // Jumbo flow: 500 extra packets for a key guaranteed present.
  for (std::size_t p = 0; p < 500; ++p) {
    trace.push_back(Packet{keys[0], 1500, packets + p});
  }
  return trace;
}

std::vector<FlowKey> distinct_keys(const std::vector<Packet>& trace) {
  std::vector<FlowKey> keys;
  keys.reserve(trace.size());
  for (const Packet& packet : trace) keys.push_back(packet.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

// --- SpscQueue: single-threaded semantics -----------------------------------

TEST(SpscQueue, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscQueue<int>(0), ContractViolation);
  EXPECT_THROW(SpscQueue<int>(1), ContractViolation);
  EXPECT_THROW(SpscQueue<int>(3), ContractViolation);
  EXPECT_THROW(SpscQueue<int>(100), ContractViolation);
  EXPECT_NO_THROW(SpscQueue<int>(2));
  EXPECT_NO_THROW(SpscQueue<int>(1 << 10));
}

TEST(SpscQueue, FifoOrderAndCapacityBound) {
  SpscQueue<int> queue(8);
  // Single-threaded test: this thread plays both SPSC roles.
  queue.assume_producer();
  queue.assume_consumer();
  EXPECT_EQ(queue.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99)) << "push into a full ring must fail";
  EXPECT_EQ(queue.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.try_pop(out)) << "pop from an empty ring must fail";
  EXPECT_EQ(queue.size_approx(), 0u);
}

TEST(SpscQueue, BulkPushTakesWhatFitsAndBulkPopReturnsInOrder) {
  SpscQueue<int> queue(8);
  queue.assume_producer();
  queue.assume_consumer();
  std::vector<int> in(12);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_EQ(queue.try_push_bulk(std::span<const int>(in)), 8u);

  std::vector<int> out(5);
  EXPECT_EQ(queue.try_pop_bulk(std::span<int>(out)), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);

  // Room for 5 more; wrap-around path.
  std::span<const int> rest(in.data() + 8, 4);
  EXPECT_EQ(queue.try_push_bulk(rest), 4u);
  std::vector<int> out2(16);
  EXPECT_EQ(queue.try_pop_bulk(std::span<int>(out2)), 7u);
  const int expect[] = {5, 6, 7, 8, 9, 10, 11};
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out2[i], expect[i]);
}

TEST(SpscQueue, WrapsManyTimesWithoutCorruption) {
  SpscQueue<std::uint64_t> queue(4);
  queue.assume_producer();
  queue.assume_consumer();
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (queue.try_push(next_in)) ++next_in;
    std::uint64_t v;
    while (queue.try_pop(v)) {
      ASSERT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_EQ(next_in, 4000u);
}

// --- SpscQueue: cross-thread handoff (TSan target) --------------------------

TEST(SpscQueue, ThreadedHandoffDeliversEveryItemInOrder) {
  constexpr std::uint64_t kItems = 200000;
  SpscQueue<std::uint64_t> queue(1 << 8);

  std::jthread consumer([&queue] {
    queue.assume_consumer();
    std::uint64_t expected = 0;
    std::vector<std::uint64_t> batch(64);
    while (expected < kItems) {
      const std::size_t n = queue.try_pop_bulk(std::span<std::uint64_t>(batch));
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(batch[i], expected) << "items reordered or corrupted";
        ++expected;
      }
    }
  });

  queue.assume_producer();  // the test main thread is the producer
  std::vector<std::uint64_t> staged(32);
  std::uint64_t next = 0;
  while (next < kItems) {
    const std::uint64_t n = std::min<std::uint64_t>(32, kItems - next);
    for (std::uint64_t i = 0; i < n; ++i) staged[i] = next + i;
    std::span<const std::uint64_t> pending(staged.data(), n);
    while (!pending.empty()) {
      const std::size_t pushed = queue.try_push_bulk(pending);
      pending = pending.subspan(pushed);
      if (!pending.empty()) std::this_thread::yield();
    }
    next += n;
  }
}

// --- BlockQueue: block hand-off semantics ------------------------------------

TEST(BlockQueue, OpenPublishConsumeRoundTrip) {
  BlockQueue<std::uint32_t> queue(4, 16);
  queue.assume_producer();
  queue.assume_consumer();
  EXPECT_EQ(queue.block_count(), 4u);
  EXPECT_EQ(queue.block_size(), 16u);

  std::uint32_t* slots = queue.try_open();
  ASSERT_NE(slots, nullptr);
  for (std::uint32_t i = 0; i < 10; ++i) slots[i] = 100 + i;
  queue.publish(10, /*kind=*/7, /*aux=*/0xabcdef);

  BlockQueue<std::uint32_t>::View view;
  ASSERT_TRUE(queue.try_front(view));
  EXPECT_EQ(view.count, 10u);
  EXPECT_EQ(view.kind, 7u);
  EXPECT_EQ(view.aux, 0xabcdefu);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(view.data[i], 100 + i);
  // try_front does not consume: same block again.
  ASSERT_TRUE(queue.try_front(view));
  EXPECT_EQ(view.count, 10u);
  queue.release();
  EXPECT_FALSE(queue.try_front(view)) << "released block still visible";
}

TEST(BlockQueue, AbandonHandsReservedSlotBack) {
  BlockQueue<std::uint32_t> queue(2, 8);
  queue.assume_producer();
  queue.assume_consumer();
  std::uint32_t* first = queue.try_open();
  ASSERT_NE(first, nullptr);
  queue.abandon();
  // Nothing was published...
  BlockQueue<std::uint32_t>::View view;
  EXPECT_FALSE(queue.try_front(view));
  // ...and the cursor did not advance: the same slot is handed out again.
  EXPECT_EQ(queue.try_open(), first);
  queue.publish(1, 0, 0);
  ASSERT_TRUE(queue.try_front(view));
  EXPECT_EQ(view.count, 1u);
}

TEST(BlockQueue, FullRingReturnsNullAndWrapsWithoutCorruption) {
  BlockQueue<std::uint64_t> queue(3, 4);
  queue.assume_producer();
  queue.assume_consumer();
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  for (int round = 0; round < 500; ++round) {
    std::uint64_t* slots;
    while ((slots = queue.try_open()) != nullptr) {
      for (std::size_t i = 0; i < 4; ++i) slots[i] = next_in++;
      queue.publish(4, 0, 0);
    }
    EXPECT_EQ(queue.size_approx_blocks(), 3u) << "null only when full";
    BlockQueue<std::uint64_t>::View view;
    while (queue.try_front(view)) {
      for (std::uint32_t i = 0; i < view.count; ++i) {
        ASSERT_EQ(view.data[i], next_out) << "blocks reordered or corrupted";
        ++next_out;
      }
      queue.release();
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_EQ(queue.high_water_blocks(), 3u);
}

// Cross-thread block hand-off (TSan target): every block arrives once, in
// order, with header and payload consistent.
TEST(BlockQueue, ThreadedBlockHandoffDeliversEveryBlockInOrder) {
  constexpr std::uint64_t kBlocks = 20000;
  constexpr std::uint32_t kBlockSize = 64;
  BlockQueue<std::uint64_t> queue(8, kBlockSize);

  std::jthread consumer([&queue] {
    queue.assume_consumer();
    std::uint64_t expected = 0;
    std::uint64_t block_index = 0;
    while (block_index < kBlocks) {
      BlockQueue<std::uint64_t>::View view;
      if (!queue.try_front(view)) {
        std::this_thread::yield();
        continue;
      }
      ASSERT_EQ(view.aux, block_index) << "header/payload tearing";
      for (std::uint32_t i = 0; i < view.count; ++i) {
        ASSERT_EQ(view.data[i], expected);
        ++expected;
      }
      queue.release();
      ++block_index;
    }
  });

  queue.assume_producer();  // the test main thread is the producer
  std::uint64_t next = 0;
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    std::uint64_t* slots;
    while ((slots = queue.try_open()) == nullptr) std::this_thread::yield();
    // Variable fill so partial blocks cross threads too.
    const std::uint32_t fill = 1 + static_cast<std::uint32_t>(b % kBlockSize);
    for (std::uint32_t i = 0; i < fill; ++i) slots[i] = next++;
    queue.publish(fill, 0, /*aux=*/b);
  }
}

// --- ShardedFcmFramework: serial equivalence --------------------------------

// The acceptance criterion: for N in {1,2,4,8}, ingesting a fixed-seed trace
// through N shards and merging yields count queries bit-exact equal to one
// serial framework. Round-robin fanout splits individual flows across
// shards, which is the adversarial case for merge correctness.
TEST(ShardedRuntime, MergedCountsBitExactVersusSerialForAllShardCounts) {
  const std::vector<Packet> trace = fixed_trace(0xfcf1ed);
  const std::vector<FlowKey> keys = distinct_keys(trace);

  FcmFramework serial(small_framework_options());
  for (const Packet& packet : trace) serial.process(packet.key);

  for (std::size_t shard_count : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shard_count));
    ShardedFcmFramework::Options options;
    options.framework = small_framework_options();
    options.shard_count = shard_count;
    options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;

    ShardedFcmFramework sharded(options);
    for (const Packet& packet : trace) sharded.ingest(packet.key);
    const ShardedFcmFramework::EpochReport report = sharded.rotate();

    EXPECT_EQ(report.packets, trace.size());
    const FcmFramework merged = sharded.merged_epoch();
    for (const FlowKey key : keys) {
      ASSERT_EQ(merged.flow_size(key), serial.flow_size(key))
          << "count query diverged for key " << key.value;
    }
    // Never-seen keys agree too (shared hash family).
    for (std::uint32_t probe = 1; probe <= 64; ++probe) {
      const FlowKey key{0xdead0000u + probe};
      ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
    }
    EXPECT_DOUBLE_EQ(report.cardinality, serial.cardinality());
    EXPECT_DOUBLE_EQ(merged.cardinality(), serial.cardinality());
    sharded.check_invariants();
  }
}

TEST(ShardedRuntime, HashFanoutIsAlsoSerialEquivalent) {
  const std::vector<Packet> trace = fixed_trace(0xabcdef, 20000, 1000);
  const std::vector<FlowKey> keys = distinct_keys(trace);

  FcmFramework serial(small_framework_options());
  for (const Packet& packet : trace) serial.process(packet.key);

  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kHashByKey;
  ShardedFcmFramework sharded(options);
  for (const Packet& packet : trace) sharded.ingest(packet.key);
  sharded.rotate();
  const FcmFramework merged = sharded.merged_epoch();
  for (const FlowKey key : keys) {
    ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
  }
}

TEST(ShardedRuntime, ByteModeCountsBytesExactly) {
  const std::vector<Packet> trace = fixed_trace(0xbeef, 8000, 400);
  std::unordered_map<std::uint32_t, std::uint64_t> true_bytes;
  for (const Packet& packet : trace) true_bytes[packet.key.value] += packet.bytes;

  FcmFramework::Options fw = small_framework_options();
  fw.count_mode = FcmFramework::CountMode::kBytes;
  FcmFramework serial(fw);
  for (const Packet& packet : trace) serial.process(packet);

  ShardedFcmFramework::Options options;
  options.framework = fw;
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);
  sharded.ingest(std::span<const Packet>(trace));
  sharded.rotate();

  const FcmFramework merged = sharded.merged_epoch();
  for (const auto& [key_value, bytes] : true_bytes) {
    const FlowKey key{key_value};
    ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
    // FCM never underestimates.
    ASSERT_GE(merged.flow_size(key), bytes);
  }
}

TEST(ShardedRuntime, TopKModeNeverUnderestimatesAndMatchesSerialHeavyFlows) {
  const std::vector<Packet> trace = fixed_trace(0x70b, 30000, 1500);
  std::unordered_map<std::uint32_t, std::uint64_t> truth;
  for (const Packet& packet : trace) ++truth[packet.key.value];

  FcmFramework::Options fw = small_framework_options();
  fw.topk_entries = 512;
  fw.heavy_hitter_threshold = 200;

  ShardedFcmFramework::Options options;
  options.framework = fw;
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);
  for (const Packet& packet : trace) sharded.ingest(packet.key);
  const auto report = sharded.rotate();

  const FcmFramework merged = sharded.merged_epoch();
  merged.check_invariants();
  for (const auto& [key_value, count] : truth) {
    ASSERT_GE(merged.flow_size(FlowKey{key_value}), count)
        << "TopK merge underestimated flow " << key_value;
  }
  // Every flow at >= 2x threshold must be reported (estimates only inflate).
  for (const auto& [key_value, count] : truth) {
    if (count < 2 * fw.heavy_hitter_threshold) continue;
    EXPECT_TRUE(std::find(report.heavy_hitters.begin(),
                          report.heavy_hitters.end(),
                          FlowKey{key_value}) != report.heavy_hitters.end())
        << "missed heavy hitter " << key_value << " (count " << count << ")";
  }
}

// --- heavy hitters across shards --------------------------------------------

// Runtime-level regression for the satellite: a flow that crosses the global
// threshold only in aggregate (each shard sees < T) must still be reported,
// and flows below T globally must not be (candidates are re-qualified
// against the merged sketch, deduplicated).
TEST(ShardedRuntime, HeavyHitterCrossesThresholdOnlyAfterMerge) {
  constexpr std::uint64_t kThreshold = 400;
  FcmFramework::Options fw = small_framework_options();
  fw.heavy_hitter_threshold = kThreshold;

  ShardedFcmFramework::Options options;
  options.framework = fw;
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);

  const FlowKey split_flow{0x0a000001};   // 600 packets, 150 per shard < 400
  const FlowKey small_flow{0x0a000002};   // 200 packets: below T globally
  const FlowKey tiny_flow{0x0a000003};    // 80 packets: below even ceil(T/N)
  for (int i = 0; i < 600; ++i) sharded.ingest(split_flow);
  for (int i = 0; i < 200; ++i) sharded.ingest(small_flow);
  for (int i = 0; i < 80; ++i) sharded.ingest(tiny_flow);

  const auto report = sharded.rotate();
  const auto& hh = report.heavy_hitters;
  EXPECT_TRUE(std::find(hh.begin(), hh.end(), split_flow) != hh.end())
      << "flow crossing T only after merging was dropped";
  EXPECT_TRUE(std::find(hh.begin(), hh.end(), tiny_flow) == hh.end());
  // No duplicates even though several shards recorded the same candidate.
  auto sorted = hh;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "heavy-hitter report contains duplicates";
  // Every reported flow really is >= T on the merged counters.
  const FcmFramework merged = sharded.merged_epoch();
  for (const FlowKey key : hh) {
    EXPECT_GE(merged.flow_size(key), kThreshold);
  }
}

// --- epoch double-buffering --------------------------------------------------

TEST(ShardedRuntime, BackToBackEpochsEachMatchTheirSerialWindow) {
  const std::vector<Packet> window_a = fixed_trace(11, 15000, 800);
  const std::vector<Packet> window_b = fixed_trace(22, 15000, 800);

  FcmFramework serial_a(small_framework_options());
  for (const Packet& packet : window_a) serial_a.process(packet.key);
  FcmFramework serial_b(small_framework_options());
  for (const Packet& packet : window_b) serial_b.process(packet.key);

  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  options.retained_epochs = 2;
  ShardedFcmFramework sharded(options);

  for (const Packet& packet : window_a) sharded.ingest(packet.key);
  const auto report_a = sharded.rotate();
  for (const Packet& packet : window_b) sharded.ingest(packet.key);
  const auto report_b = sharded.rotate();

  EXPECT_EQ(report_a.index, 0u);
  EXPECT_EQ(report_b.index, 1u);
  EXPECT_EQ(report_a.packets, window_a.size());
  EXPECT_EQ(report_b.packets, window_b.size())
      << "second epoch leaked packets from the first (generation not cleared)";
  EXPECT_EQ(sharded.epochs_completed(), 2u);

  const FcmFramework merged_b = sharded.merged_epoch(0);
  const FcmFramework merged_a = sharded.merged_epoch(1);
  for (const FlowKey key : distinct_keys(window_a)) {
    ASSERT_EQ(merged_a.flow_size(key), serial_a.flow_size(key));
  }
  for (const FlowKey key : distinct_keys(window_b)) {
    ASSERT_EQ(merged_b.flow_size(key), serial_b.flow_size(key));
  }
  sharded.check_invariants();
}

TEST(ShardedRuntime, HeavyChangesReportedAcrossEpochs) {
  constexpr std::uint64_t kThreshold = 300;
  FcmFramework::Options fw = small_framework_options();
  fw.heavy_hitter_threshold = kThreshold;

  ShardedFcmFramework::Options options;
  options.framework = fw;
  options.shard_count = 2;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);

  const FlowKey surging{0xc0ffee01};
  const FlowKey steady{0xc0ffee02};
  // Epoch 0: steady is heavy, surging absent.
  for (int i = 0; i < 500; ++i) sharded.ingest(steady);
  const auto report0 = sharded.rotate();
  EXPECT_TRUE(report0.heavy_changes.empty()) << "no previous epoch to diff";
  // Epoch 1: surging appears at 600, steady stays at ~500 (delta below T).
  for (int i = 0; i < 600; ++i) sharded.ingest(surging);
  for (int i = 0; i < 500; ++i) sharded.ingest(steady);
  const auto report1 = sharded.rotate();

  const auto& hc = report1.heavy_changes;
  EXPECT_TRUE(std::find(hc.begin(), hc.end(), surging) != hc.end())
      << "flow surging by 600 (> T=300) across epochs not flagged";
  EXPECT_TRUE(std::find(hc.begin(), hc.end(), steady) == hc.end())
      << "steady flow (delta ~0) wrongly flagged as heavy change";
}

TEST(ShardedRuntime, RotateAsyncDoesNotStallIngest) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 2;
  // analyze_on_rotate makes the background merge slow enough that ingest
  // provably overlaps it on any scheduler.
  options.analyze_on_rotate = true;
  ShardedFcmFramework sharded(options);

  const std::vector<Packet> window_a = fixed_trace(7, 10000, 500);
  for (const Packet& packet : window_a) sharded.ingest(packet.key);
  const std::size_t epoch = sharded.rotate_async();
  // Ingest the next window immediately — before the merge completed.
  const std::vector<Packet> window_b = fixed_trace(8, 10000, 500);
  for (const Packet& packet : window_b) sharded.ingest(packet.key);

  const auto report_a = sharded.wait_epoch(epoch);
  EXPECT_EQ(report_a.packets, window_a.size());
  ASSERT_TRUE(report_a.analysis.has_value());
  EXPECT_GT(report_a.analysis->cardinality, 0.0);

  const auto report_b = sharded.rotate();
  EXPECT_EQ(report_b.packets, window_b.size())
      << "packets ingested during the async merge were lost or double-counted";
}

TEST(ShardedRuntime, RetainedEpochWindowSlidesAndExpiredEpochsThrow) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 2;
  options.retained_epochs = 2;
  ShardedFcmFramework sharded(options);

  for (std::size_t epoch = 0; epoch < 4; ++epoch) {
    sharded.ingest(FlowKey{static_cast<std::uint32_t>(epoch + 1)});
    sharded.rotate();
  }
  EXPECT_EQ(sharded.epochs_completed(), 4u);
  EXPECT_NO_THROW(sharded.merged_epoch(0));
  EXPECT_NO_THROW(sharded.merged_epoch(1));
  EXPECT_THROW(sharded.merged_epoch(2), ContractViolation);
  // wait_epoch on an already-merged, still-retained epoch returns instantly.
  EXPECT_EQ(sharded.wait_epoch(3).index, 3u);
  // Expired epoch: merged but evicted from the history window.
  EXPECT_THROW(sharded.wait_epoch(0), ContractViolation);
  // flow_size queries the latest epoch.
  EXPECT_EQ(sharded.flow_size(FlowKey{4}), 1u);
}

// --- backpressure and teardown ----------------------------------------------

TEST(ShardedRuntime, TinyQueueBackpressureLosesNothing) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 4;
  options.queue_capacity = 64;  // force constant ring-full backpressure
  options.flush_batch = 16;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);

  const std::vector<Packet> trace = fixed_trace(0x7e57, 30000, 1000);
  FcmFramework serial(small_framework_options());
  for (const Packet& packet : trace) serial.process(packet.key);
  for (const Packet& packet : trace) sharded.ingest(packet.key);
  const auto report = sharded.rotate();

  EXPECT_EQ(report.packets, trace.size());
  const FcmFramework merged = sharded.merged_epoch();
  for (const FlowKey key : distinct_keys(trace)) {
    ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
  }
}

TEST(ShardedRuntime, StopIsIdempotentAndDestructorIsSafeWithoutRotation) {
  {
    ShardedFcmFramework::Options options;
    options.framework = small_framework_options();
    options.shard_count = 2;
    ShardedFcmFramework sharded(options);
    for (int i = 0; i < 1000; ++i) {
      sharded.ingest(FlowKey{static_cast<std::uint32_t>(i)});
    }
    // No rotation: destructor must still drain and join cleanly.
  }
  {
    ShardedFcmFramework::Options options;
    options.framework = small_framework_options();
    options.shard_count = 2;
    ShardedFcmFramework sharded(options);
    sharded.ingest(FlowKey{1});
    sharded.rotate();
    sharded.stop();
    sharded.stop();  // idempotent
    sharded.check_invariants();
    // Results remain queryable after stop().
    EXPECT_EQ(sharded.flow_size(FlowKey{1}), 1u);
    EXPECT_EQ(sharded.epochs_completed(), 1u);
  }
}

// --- multi-producer ingest ----------------------------------------------------

// Several capture threads feed one runtime through their own IngestHandles
// (per-producer rings keep every ring strictly SPSC). FCM counters are linear
// and order-independent, so the merged epoch must be bit-exact equal to a
// serial run over the union of all slices — no matter how the producer
// threads interleave. CI runs this under TSan: every handle/ring hand-off and
// the quiesce-before-rotate protocol is exercised across real threads.
TEST(ShardedRuntime, MultiProducerIngestBitExactVersusSerial) {
  const std::vector<Packet> trace = fixed_trace(0x3097, 30000, 1200);
  FcmFramework serial(small_framework_options());
  for (const Packet& packet : trace) serial.process(packet.key);

  std::vector<FlowKey> keys;
  keys.reserve(trace.size());
  for (const Packet& packet : trace) keys.push_back(packet.key);
  const std::size_t third = keys.size() / 3;
  const std::span<const FlowKey> all(keys);
  const auto driver_slice = all.subspan(0, third);
  const auto slice1 = all.subspan(third, third);
  const auto slice2 = all.subspan(2 * third);

  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 4;
  options.producer_count = 3;
  ShardedFcmFramework sharded(options);

  {
    // Secondary producers: one span-heavy, one per-key, both flushing before
    // they exit — joined before rotate_async(), which is exactly the
    // "flushed and quiescent across rotation" ownership rule.
    std::jthread producer1([&sharded, slice1] {
      auto& handle = sharded.ingest_handle(1);
      std::span<const FlowKey> rest = slice1;
      while (!rest.empty()) {
        const std::size_t n = std::min<std::size_t>(333, rest.size());
        handle.ingest(rest.subspan(0, n));
        rest = rest.subspan(n);
      }
      handle.flush();
    });
    std::jthread producer2([&sharded, slice2] {
      auto& handle = sharded.ingest_handle(2);
      for (const FlowKey key : slice2) handle.ingest(key);
      handle.flush();
    });
    sharded.ingest(driver_slice);  // the driver ingests its own slice meanwhile
  }

  const auto report = sharded.rotate();
  EXPECT_EQ(report.packets, keys.size())
      << "multi-producer traffic lost or double-counted";
  const FcmFramework merged = sharded.merged_epoch();
  for (const FlowKey key : distinct_keys(trace)) {
    ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
  }
  sharded.check_invariants();
}

// A second epoch after the producers re-attach (new threads re-driving the
// same handles) stays exact: the quiesce window only spans the rotation.
TEST(ShardedRuntime, MultiProducerSecondEpochAfterRequiesce) {
  const std::vector<Packet> window_a = fixed_trace(0x51, 8000, 500);
  const std::vector<Packet> window_b = fixed_trace(0x52, 8000, 500);
  FcmFramework serial_a(small_framework_options());
  for (const Packet& packet : window_a) serial_a.process(packet.key);
  FcmFramework serial_b(small_framework_options());
  for (const Packet& packet : window_b) serial_b.process(packet.key);

  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 2;
  options.producer_count = 2;
  options.retained_epochs = 2;
  ShardedFcmFramework sharded(options);

  const auto feed_epoch = [&sharded](const std::vector<Packet>& window) {
    const std::size_t half = window.size() / 2;
    std::jthread producer([&sharded, &window, half] {
      auto& handle = sharded.ingest_handle(1);
      for (std::size_t i = half; i < window.size(); ++i) {
        handle.ingest(window[i].key);
      }
      handle.flush();
    });
    for (std::size_t i = 0; i < half; ++i) sharded.ingest(window[i].key);
  };

  feed_epoch(window_a);
  const auto report_a = sharded.rotate();
  feed_epoch(window_b);
  const auto report_b = sharded.rotate();

  EXPECT_EQ(report_a.packets, window_a.size());
  EXPECT_EQ(report_b.packets, window_b.size());
  const FcmFramework merged_b = sharded.merged_epoch(0);
  const FcmFramework merged_a = sharded.merged_epoch(1);
  for (const FlowKey key : distinct_keys(window_a)) {
    ASSERT_EQ(merged_a.flow_size(key), serial_a.flow_size(key));
  }
  for (const FlowKey key : distinct_keys(window_b)) {
    ASSERT_EQ(merged_b.flow_size(key), serial_b.flow_size(key));
  }
}

// --- adaptive flush -----------------------------------------------------------

// Trickle traffic: far fewer keys than flush_batch, NO rotation. With
// flush_interval set, the deadline flush must publish the partial block, so
// the per-shard packet counter advances while the epoch is still open. (With
// flush_interval == 0 these keys would sit staged until rotate/stop.)
TEST(ShardedRuntime, AdaptiveFlushPublishesPartialBlocksBeforeRotation) {
  fcm::obs::MetricsRegistry registry;
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 1;
  options.flush_batch = 64;
  options.flush_interval = std::chrono::milliseconds(1);
  options.metrics = &registry;
  options.metrics_instance = "trickle";
  ShardedFcmFramework sharded(options);

  // The series the runtime publishes into (idempotent lookup by name+labels).
  fcm::obs::Counter& shard_packets = registry.counter(
      "fcm_runtime_shard_packets_total", {{"instance", "trickle"}, {"shard", "0"}});
  fcm::obs::Counter& partial_flushes =
      registry.counter("fcm_runtime_partial_flushes_total", {{"instance", "trickle"}});

  for (std::uint32_t i = 1; i <= 5; ++i) sharded.ingest(FlowKey{i});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // This call finds the staged block past its deadline and publishes it
  // (6 keys, block size 64 — a partial block by a wide margin).
  sharded.ingest(FlowKey{6});

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (shard_packets.value() < 6 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(shard_packets.value(), 6u)
      << "partial block never reached the worker without a rotation";
  EXPECT_GE(partial_flushes.value(), 1u);

  // The early publish must not change results.
  sharded.rotate();
  for (std::uint32_t i = 1; i <= 6; ++i) {
    EXPECT_EQ(sharded.flow_size(FlowKey{i}), 1u);
  }
}

// --- pinning and occupancy ----------------------------------------------------

TEST(ShardedRuntime, PinWorkersIsExactAndDegradesGracefully) {
  // Pinning is a performance hint (no-op where unsupported); results must be
  // identical either way, on any core count.
  const std::vector<Packet> trace = fixed_trace(0x919, 10000, 600);
  FcmFramework serial(small_framework_options());
  for (const Packet& packet : trace) serial.process(packet.key);

  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 2;
  options.pin_workers = true;
  ShardedFcmFramework sharded(options);
  for (const Packet& packet : trace) sharded.ingest(packet.key);
  sharded.rotate();
  const FcmFramework merged = sharded.merged_epoch();
  for (const FlowKey key : distinct_keys(trace)) {
    ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
  }
}

TEST(ShardedRuntime, QueueHighWaterReportsPerShardFractions) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 2;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);
  const std::vector<Packet> trace = fixed_trace(0x44, 20000, 800);
  for (const Packet& packet : trace) sharded.ingest(packet.key);
  sharded.rotate();

  const std::vector<double> high_water = sharded.queue_high_water();
  ASSERT_EQ(high_water.size(), 2u);
  for (const double fraction : high_water) {
    EXPECT_GT(fraction, 0.0) << "blocks were published, high water must move";
    EXPECT_LE(fraction, 1.0);
  }
}

// --- option validation --------------------------------------------------------

TEST(ShardedRuntime, RejectsInvalidOptions) {
  const auto make = [](auto mutate) {
    ShardedFcmFramework::Options options;
    options.framework = small_framework_options();
    mutate(options);
    return ShardedFcmFramework(options);
  };
  EXPECT_THROW(make([](auto& o) { o.shard_count = 0; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.shard_count = 1000; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.queue_capacity = 100; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.queue_capacity = 1; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.flush_batch = 0; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) {
                 o.queue_capacity = 64;
                 o.flush_batch = 128;
               }),
               ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.retained_epochs = 0; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.producer_count = 0; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.producer_count = 65; }), ContractViolation);
  EXPECT_THROW(
      make([](auto& o) { o.flush_interval = std::chrono::nanoseconds(-1); }),
      ContractViolation);
  // Byte mode stages (key, bytes) pairs: a 1-slot block cannot hold one.
  EXPECT_THROW(make([](auto& o) {
                 o.framework.count_mode = FcmFramework::CountMode::kBytes;
                 o.flush_batch = 1;
               }),
               ContractViolation);
}

TEST(ShardedRuntime, IngestHandleClaimsValidated) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 2;
  options.producer_count = 2;
  ShardedFcmFramework sharded(options);
  EXPECT_THROW(sharded.ingest_handle(0), ContractViolation)
      << "handle 0 is the driver's own staging";
  EXPECT_THROW(sharded.ingest_handle(2), ContractViolation);
  auto& handle = sharded.ingest_handle(1);
  EXPECT_EQ(handle.producer_index(), 1u);
  handle.ingest(FlowKey{42});
  handle.flush();
  sharded.rotate();
  EXPECT_EQ(sharded.flow_size(FlowKey{42}), 1u);
}

TEST(ShardedRuntime, ByteModeRejectsZeroBytePackets) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.framework.count_mode = FcmFramework::CountMode::kBytes;
  options.shard_count = 2;
  ShardedFcmFramework sharded(options);
  EXPECT_THROW(sharded.ingest(Packet{FlowKey{1}, 0, 0}), ContractViolation);
  sharded.ingest(Packet{FlowKey{1}, 100, 0});
  sharded.rotate();
  EXPECT_EQ(sharded.flow_size(FlowKey{1}), 100u);
}

}  // namespace
