// Tests for the sharded ingestion runtime (src/runtime/) and its SPSC ring.
//
// The headline property (ISSUE acceptance criterion): merged N-shard count
// queries are bit-exact equal to a serial FcmSketch fed the same fixed-seed
// trace, for N in {1, 2, 4, 8}. Also covered: the lock-free SpscQueue in
// isolation and across threads, epoch double-buffering (two back-to-back
// windows each serial-equivalent), non-stalling rotate_async, heavy-hitter
// re-qualification across shards at runtime level, byte mode, TopK mode,
// backpressure under a tiny ring, teardown discipline, and option
// validation via contracts.
//
// CI runs this binary under TSan (FCM_SANITIZE=thread): every cross-thread
// handoff in the runtime is exercised here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/contracts.h"
#include "common/spsc_queue.h"
#include "flow/flow_key.h"
#include "flow/packet.h"
#include "framework/fcm_framework.h"
#include "runtime/sharded_framework.h"

namespace {

using fcm::common::ContractViolation;
using fcm::common::SpscQueue;
using fcm::core::FcmConfig;
using fcm::flow::FlowKey;
using fcm::flow::Packet;
using fcm::framework::FcmFramework;
using fcm::runtime::ShardedFcmFramework;

// --- shared fixtures --------------------------------------------------------

// Small but multi-level FCM geometry: cheap enough for TSan, deep enough
// that the fixed traces push counters through stage-1 and stage-2 overflow.
FcmConfig small_config() {
  FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 4096;
  config.seed = 0x5555aaaa;
  return config;
}

FcmFramework::Options small_framework_options() {
  FcmFramework::Options options;
  options.fcm = small_config();
  options.em.max_iterations = 3;  // keep analyze() affordable in tests
  return options;
}

// Deterministic skewed trace: `flows` flows, geometric-ish sizes, plus one
// jumbo flow that overflows the 8-bit stage thousands of times over.
std::vector<Packet> fixed_trace(std::uint64_t seed, std::size_t packets = 40000,
                                std::size_t flows = 2000) {
  std::mt19937_64 rng(seed);
  std::vector<FlowKey> keys;
  keys.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    keys.push_back(FlowKey{static_cast<std::uint32_t>(rng())});
  }
  std::vector<Packet> trace;
  trace.reserve(packets + 500);
  // Zipf-ish: flow i gets weight ~ 1/(i+1).
  std::vector<double> weights(flows);
  for (std::size_t i = 0; i < flows; ++i) weights[i] = 1.0 / static_cast<double>(i + 1);
  std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
  std::uniform_int_distribution<std::uint32_t> bytes(40, 1500);
  for (std::size_t p = 0; p < packets; ++p) {
    trace.push_back(Packet{keys[pick(rng)], bytes(rng), p});
  }
  // Jumbo flow: 500 extra packets for a key guaranteed present.
  for (std::size_t p = 0; p < 500; ++p) {
    trace.push_back(Packet{keys[0], 1500, packets + p});
  }
  return trace;
}

std::vector<FlowKey> distinct_keys(const std::vector<Packet>& trace) {
  std::vector<FlowKey> keys;
  keys.reserve(trace.size());
  for (const Packet& packet : trace) keys.push_back(packet.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

// --- SpscQueue: single-threaded semantics -----------------------------------

TEST(SpscQueue, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscQueue<int>(0), ContractViolation);
  EXPECT_THROW(SpscQueue<int>(1), ContractViolation);
  EXPECT_THROW(SpscQueue<int>(3), ContractViolation);
  EXPECT_THROW(SpscQueue<int>(100), ContractViolation);
  EXPECT_NO_THROW(SpscQueue<int>(2));
  EXPECT_NO_THROW(SpscQueue<int>(1 << 10));
}

TEST(SpscQueue, FifoOrderAndCapacityBound) {
  SpscQueue<int> queue(8);
  // Single-threaded test: this thread plays both SPSC roles.
  queue.assume_producer();
  queue.assume_consumer();
  EXPECT_EQ(queue.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(99)) << "push into a full ring must fail";
  EXPECT_EQ(queue.size_approx(), 8u);
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.try_pop(out)) << "pop from an empty ring must fail";
  EXPECT_EQ(queue.size_approx(), 0u);
}

TEST(SpscQueue, BulkPushTakesWhatFitsAndBulkPopReturnsInOrder) {
  SpscQueue<int> queue(8);
  queue.assume_producer();
  queue.assume_consumer();
  std::vector<int> in(12);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_EQ(queue.try_push_bulk(std::span<const int>(in)), 8u);

  std::vector<int> out(5);
  EXPECT_EQ(queue.try_pop_bulk(std::span<int>(out)), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);

  // Room for 5 more; wrap-around path.
  std::span<const int> rest(in.data() + 8, 4);
  EXPECT_EQ(queue.try_push_bulk(rest), 4u);
  std::vector<int> out2(16);
  EXPECT_EQ(queue.try_pop_bulk(std::span<int>(out2)), 7u);
  const int expect[] = {5, 6, 7, 8, 9, 10, 11};
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out2[i], expect[i]);
}

TEST(SpscQueue, WrapsManyTimesWithoutCorruption) {
  SpscQueue<std::uint64_t> queue(4);
  queue.assume_producer();
  queue.assume_consumer();
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (queue.try_push(next_in)) ++next_in;
    std::uint64_t v;
    while (queue.try_pop(v)) {
      ASSERT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_EQ(next_in, 4000u);
}

// --- SpscQueue: cross-thread handoff (TSan target) --------------------------

TEST(SpscQueue, ThreadedHandoffDeliversEveryItemInOrder) {
  constexpr std::uint64_t kItems = 200000;
  SpscQueue<std::uint64_t> queue(1 << 8);

  std::jthread consumer([&queue] {
    queue.assume_consumer();
    std::uint64_t expected = 0;
    std::vector<std::uint64_t> batch(64);
    while (expected < kItems) {
      const std::size_t n = queue.try_pop_bulk(std::span<std::uint64_t>(batch));
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(batch[i], expected) << "items reordered or corrupted";
        ++expected;
      }
    }
  });

  queue.assume_producer();  // the test main thread is the producer
  std::vector<std::uint64_t> staged(32);
  std::uint64_t next = 0;
  while (next < kItems) {
    const std::uint64_t n = std::min<std::uint64_t>(32, kItems - next);
    for (std::uint64_t i = 0; i < n; ++i) staged[i] = next + i;
    std::span<const std::uint64_t> pending(staged.data(), n);
    while (!pending.empty()) {
      const std::size_t pushed = queue.try_push_bulk(pending);
      pending = pending.subspan(pushed);
      if (!pending.empty()) std::this_thread::yield();
    }
    next += n;
  }
}

// --- ShardedFcmFramework: serial equivalence --------------------------------

// The acceptance criterion: for N in {1,2,4,8}, ingesting a fixed-seed trace
// through N shards and merging yields count queries bit-exact equal to one
// serial framework. Round-robin fanout splits individual flows across
// shards, which is the adversarial case for merge correctness.
TEST(ShardedRuntime, MergedCountsBitExactVersusSerialForAllShardCounts) {
  const std::vector<Packet> trace = fixed_trace(0xfcf1ed);
  const std::vector<FlowKey> keys = distinct_keys(trace);

  FcmFramework serial(small_framework_options());
  for (const Packet& packet : trace) serial.process(packet.key);

  for (std::size_t shard_count : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shard_count));
    ShardedFcmFramework::Options options;
    options.framework = small_framework_options();
    options.shard_count = shard_count;
    options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;

    ShardedFcmFramework sharded(options);
    for (const Packet& packet : trace) sharded.ingest(packet.key);
    const ShardedFcmFramework::EpochReport report = sharded.rotate();

    EXPECT_EQ(report.packets, trace.size());
    const FcmFramework merged = sharded.merged_epoch();
    for (const FlowKey key : keys) {
      ASSERT_EQ(merged.flow_size(key), serial.flow_size(key))
          << "count query diverged for key " << key.value;
    }
    // Never-seen keys agree too (shared hash family).
    for (std::uint32_t probe = 1; probe <= 64; ++probe) {
      const FlowKey key{0xdead0000u + probe};
      ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
    }
    EXPECT_DOUBLE_EQ(report.cardinality, serial.cardinality());
    EXPECT_DOUBLE_EQ(merged.cardinality(), serial.cardinality());
    sharded.check_invariants();
  }
}

TEST(ShardedRuntime, HashFanoutIsAlsoSerialEquivalent) {
  const std::vector<Packet> trace = fixed_trace(0xabcdef, 20000, 1000);
  const std::vector<FlowKey> keys = distinct_keys(trace);

  FcmFramework serial(small_framework_options());
  for (const Packet& packet : trace) serial.process(packet.key);

  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kHashByKey;
  ShardedFcmFramework sharded(options);
  for (const Packet& packet : trace) sharded.ingest(packet.key);
  sharded.rotate();
  const FcmFramework merged = sharded.merged_epoch();
  for (const FlowKey key : keys) {
    ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
  }
}

TEST(ShardedRuntime, ByteModeCountsBytesExactly) {
  const std::vector<Packet> trace = fixed_trace(0xbeef, 8000, 400);
  std::unordered_map<std::uint32_t, std::uint64_t> true_bytes;
  for (const Packet& packet : trace) true_bytes[packet.key.value] += packet.bytes;

  FcmFramework::Options fw = small_framework_options();
  fw.count_mode = FcmFramework::CountMode::kBytes;
  FcmFramework serial(fw);
  for (const Packet& packet : trace) serial.process(packet);

  ShardedFcmFramework::Options options;
  options.framework = fw;
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);
  sharded.ingest(std::span<const Packet>(trace));
  sharded.rotate();

  const FcmFramework merged = sharded.merged_epoch();
  for (const auto& [key_value, bytes] : true_bytes) {
    const FlowKey key{key_value};
    ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
    // FCM never underestimates.
    ASSERT_GE(merged.flow_size(key), bytes);
  }
}

TEST(ShardedRuntime, TopKModeNeverUnderestimatesAndMatchesSerialHeavyFlows) {
  const std::vector<Packet> trace = fixed_trace(0x70b, 30000, 1500);
  std::unordered_map<std::uint32_t, std::uint64_t> truth;
  for (const Packet& packet : trace) ++truth[packet.key.value];

  FcmFramework::Options fw = small_framework_options();
  fw.topk_entries = 512;
  fw.heavy_hitter_threshold = 200;

  ShardedFcmFramework::Options options;
  options.framework = fw;
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);
  for (const Packet& packet : trace) sharded.ingest(packet.key);
  const auto report = sharded.rotate();

  const FcmFramework merged = sharded.merged_epoch();
  merged.check_invariants();
  for (const auto& [key_value, count] : truth) {
    ASSERT_GE(merged.flow_size(FlowKey{key_value}), count)
        << "TopK merge underestimated flow " << key_value;
  }
  // Every flow at >= 2x threshold must be reported (estimates only inflate).
  for (const auto& [key_value, count] : truth) {
    if (count < 2 * fw.heavy_hitter_threshold) continue;
    EXPECT_TRUE(std::find(report.heavy_hitters.begin(),
                          report.heavy_hitters.end(),
                          FlowKey{key_value}) != report.heavy_hitters.end())
        << "missed heavy hitter " << key_value << " (count " << count << ")";
  }
}

// --- heavy hitters across shards --------------------------------------------

// Runtime-level regression for the satellite: a flow that crosses the global
// threshold only in aggregate (each shard sees < T) must still be reported,
// and flows below T globally must not be (candidates are re-qualified
// against the merged sketch, deduplicated).
TEST(ShardedRuntime, HeavyHitterCrossesThresholdOnlyAfterMerge) {
  constexpr std::uint64_t kThreshold = 400;
  FcmFramework::Options fw = small_framework_options();
  fw.heavy_hitter_threshold = kThreshold;

  ShardedFcmFramework::Options options;
  options.framework = fw;
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);

  const FlowKey split_flow{0x0a000001};   // 600 packets, 150 per shard < 400
  const FlowKey small_flow{0x0a000002};   // 200 packets: below T globally
  const FlowKey tiny_flow{0x0a000003};    // 80 packets: below even ceil(T/N)
  for (int i = 0; i < 600; ++i) sharded.ingest(split_flow);
  for (int i = 0; i < 200; ++i) sharded.ingest(small_flow);
  for (int i = 0; i < 80; ++i) sharded.ingest(tiny_flow);

  const auto report = sharded.rotate();
  const auto& hh = report.heavy_hitters;
  EXPECT_TRUE(std::find(hh.begin(), hh.end(), split_flow) != hh.end())
      << "flow crossing T only after merging was dropped";
  EXPECT_TRUE(std::find(hh.begin(), hh.end(), tiny_flow) == hh.end());
  // No duplicates even though several shards recorded the same candidate.
  auto sorted = hh;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "heavy-hitter report contains duplicates";
  // Every reported flow really is >= T on the merged counters.
  const FcmFramework merged = sharded.merged_epoch();
  for (const FlowKey key : hh) {
    EXPECT_GE(merged.flow_size(key), kThreshold);
  }
}

// --- epoch double-buffering --------------------------------------------------

TEST(ShardedRuntime, BackToBackEpochsEachMatchTheirSerialWindow) {
  const std::vector<Packet> window_a = fixed_trace(11, 15000, 800);
  const std::vector<Packet> window_b = fixed_trace(22, 15000, 800);

  FcmFramework serial_a(small_framework_options());
  for (const Packet& packet : window_a) serial_a.process(packet.key);
  FcmFramework serial_b(small_framework_options());
  for (const Packet& packet : window_b) serial_b.process(packet.key);

  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 4;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  options.retained_epochs = 2;
  ShardedFcmFramework sharded(options);

  for (const Packet& packet : window_a) sharded.ingest(packet.key);
  const auto report_a = sharded.rotate();
  for (const Packet& packet : window_b) sharded.ingest(packet.key);
  const auto report_b = sharded.rotate();

  EXPECT_EQ(report_a.index, 0u);
  EXPECT_EQ(report_b.index, 1u);
  EXPECT_EQ(report_a.packets, window_a.size());
  EXPECT_EQ(report_b.packets, window_b.size())
      << "second epoch leaked packets from the first (generation not cleared)";
  EXPECT_EQ(sharded.epochs_completed(), 2u);

  const FcmFramework merged_b = sharded.merged_epoch(0);
  const FcmFramework merged_a = sharded.merged_epoch(1);
  for (const FlowKey key : distinct_keys(window_a)) {
    ASSERT_EQ(merged_a.flow_size(key), serial_a.flow_size(key));
  }
  for (const FlowKey key : distinct_keys(window_b)) {
    ASSERT_EQ(merged_b.flow_size(key), serial_b.flow_size(key));
  }
  sharded.check_invariants();
}

TEST(ShardedRuntime, HeavyChangesReportedAcrossEpochs) {
  constexpr std::uint64_t kThreshold = 300;
  FcmFramework::Options fw = small_framework_options();
  fw.heavy_hitter_threshold = kThreshold;

  ShardedFcmFramework::Options options;
  options.framework = fw;
  options.shard_count = 2;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);

  const FlowKey surging{0xc0ffee01};
  const FlowKey steady{0xc0ffee02};
  // Epoch 0: steady is heavy, surging absent.
  for (int i = 0; i < 500; ++i) sharded.ingest(steady);
  const auto report0 = sharded.rotate();
  EXPECT_TRUE(report0.heavy_changes.empty()) << "no previous epoch to diff";
  // Epoch 1: surging appears at 600, steady stays at ~500 (delta below T).
  for (int i = 0; i < 600; ++i) sharded.ingest(surging);
  for (int i = 0; i < 500; ++i) sharded.ingest(steady);
  const auto report1 = sharded.rotate();

  const auto& hc = report1.heavy_changes;
  EXPECT_TRUE(std::find(hc.begin(), hc.end(), surging) != hc.end())
      << "flow surging by 600 (> T=300) across epochs not flagged";
  EXPECT_TRUE(std::find(hc.begin(), hc.end(), steady) == hc.end())
      << "steady flow (delta ~0) wrongly flagged as heavy change";
}

TEST(ShardedRuntime, RotateAsyncDoesNotStallIngest) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 2;
  // analyze_on_rotate makes the background merge slow enough that ingest
  // provably overlaps it on any scheduler.
  options.analyze_on_rotate = true;
  ShardedFcmFramework sharded(options);

  const std::vector<Packet> window_a = fixed_trace(7, 10000, 500);
  for (const Packet& packet : window_a) sharded.ingest(packet.key);
  const std::size_t epoch = sharded.rotate_async();
  // Ingest the next window immediately — before the merge completed.
  const std::vector<Packet> window_b = fixed_trace(8, 10000, 500);
  for (const Packet& packet : window_b) sharded.ingest(packet.key);

  const auto report_a = sharded.wait_epoch(epoch);
  EXPECT_EQ(report_a.packets, window_a.size());
  ASSERT_TRUE(report_a.analysis.has_value());
  EXPECT_GT(report_a.analysis->cardinality, 0.0);

  const auto report_b = sharded.rotate();
  EXPECT_EQ(report_b.packets, window_b.size())
      << "packets ingested during the async merge were lost or double-counted";
}

TEST(ShardedRuntime, RetainedEpochWindowSlidesAndExpiredEpochsThrow) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 2;
  options.retained_epochs = 2;
  ShardedFcmFramework sharded(options);

  for (std::size_t epoch = 0; epoch < 4; ++epoch) {
    sharded.ingest(FlowKey{static_cast<std::uint32_t>(epoch + 1)});
    sharded.rotate();
  }
  EXPECT_EQ(sharded.epochs_completed(), 4u);
  EXPECT_NO_THROW(sharded.merged_epoch(0));
  EXPECT_NO_THROW(sharded.merged_epoch(1));
  EXPECT_THROW(sharded.merged_epoch(2), ContractViolation);
  // wait_epoch on an already-merged, still-retained epoch returns instantly.
  EXPECT_EQ(sharded.wait_epoch(3).index, 3u);
  // Expired epoch: merged but evicted from the history window.
  EXPECT_THROW(sharded.wait_epoch(0), ContractViolation);
  // flow_size queries the latest epoch.
  EXPECT_EQ(sharded.flow_size(FlowKey{4}), 1u);
}

// --- backpressure and teardown ----------------------------------------------

TEST(ShardedRuntime, TinyQueueBackpressureLosesNothing) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.shard_count = 4;
  options.queue_capacity = 64;  // force constant ring-full backpressure
  options.flush_batch = 16;
  options.fanout = ShardedFcmFramework::Fanout::kRoundRobin;
  ShardedFcmFramework sharded(options);

  const std::vector<Packet> trace = fixed_trace(0x7e57, 30000, 1000);
  FcmFramework serial(small_framework_options());
  for (const Packet& packet : trace) serial.process(packet.key);
  for (const Packet& packet : trace) sharded.ingest(packet.key);
  const auto report = sharded.rotate();

  EXPECT_EQ(report.packets, trace.size());
  const FcmFramework merged = sharded.merged_epoch();
  for (const FlowKey key : distinct_keys(trace)) {
    ASSERT_EQ(merged.flow_size(key), serial.flow_size(key));
  }
}

TEST(ShardedRuntime, StopIsIdempotentAndDestructorIsSafeWithoutRotation) {
  {
    ShardedFcmFramework::Options options;
    options.framework = small_framework_options();
    options.shard_count = 2;
    ShardedFcmFramework sharded(options);
    for (int i = 0; i < 1000; ++i) {
      sharded.ingest(FlowKey{static_cast<std::uint32_t>(i)});
    }
    // No rotation: destructor must still drain and join cleanly.
  }
  {
    ShardedFcmFramework::Options options;
    options.framework = small_framework_options();
    options.shard_count = 2;
    ShardedFcmFramework sharded(options);
    sharded.ingest(FlowKey{1});
    sharded.rotate();
    sharded.stop();
    sharded.stop();  // idempotent
    sharded.check_invariants();
    // Results remain queryable after stop().
    EXPECT_EQ(sharded.flow_size(FlowKey{1}), 1u);
    EXPECT_EQ(sharded.epochs_completed(), 1u);
  }
}

// --- option validation --------------------------------------------------------

TEST(ShardedRuntime, RejectsInvalidOptions) {
  const auto make = [](auto mutate) {
    ShardedFcmFramework::Options options;
    options.framework = small_framework_options();
    mutate(options);
    return ShardedFcmFramework(options);
  };
  EXPECT_THROW(make([](auto& o) { o.shard_count = 0; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.shard_count = 1000; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.queue_capacity = 100; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.queue_capacity = 1; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.flush_batch = 0; }), ContractViolation);
  EXPECT_THROW(make([](auto& o) {
                 o.queue_capacity = 64;
                 o.flush_batch = 128;
               }),
               ContractViolation);
  EXPECT_THROW(make([](auto& o) { o.retained_epochs = 0; }), ContractViolation);
}

TEST(ShardedRuntime, ByteModeRejectsZeroBytePackets) {
  ShardedFcmFramework::Options options;
  options.framework = small_framework_options();
  options.framework.count_mode = FcmFramework::CountMode::kBytes;
  options.shard_count = 2;
  ShardedFcmFramework sharded(options);
  EXPECT_THROW(sharded.ingest(Packet{FlowKey{1}, 0, 0}), ContractViolation);
  sharded.ingest(Packet{FlowKey{1}, 100, 0});
  sharded.rotate();
  EXPECT_EQ(sharded.flow_size(FlowKey{1}), 100u);
}

}  // namespace
