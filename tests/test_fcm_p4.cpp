// The headline hardware claim: the FCM program running on the PISA pipeline
// model is bit-identical to the software sketch.
#include "pisa/fcm_p4.h"

#include <gtest/gtest.h>

#include "flow/synthetic.h"
#include "pisa/hardware_topk.h"

namespace fcm::pisa {
namespace {

core::FcmConfig pipeline_config(std::size_t k, std::uint64_t seed) {
  core::FcmConfig config;
  config.tree_count = 2;
  config.k = k;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = k * k * 32;
  config.seed = seed;
  return config;
}

class FcmP4EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(FcmP4EquivalenceTest, BitIdenticalToSoftwareSketch) {
  const auto [k, seed] = GetParam();
  const core::FcmConfig config = pipeline_config(k, seed);
  core::FcmSketch software(config);
  FcmP4Program hardware(config);

  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 60000;
  trace_config.flow_count = 6000;
  trace_config.seed = seed;
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();

  for (const flow::Packet& p : trace.packets()) {
    const std::uint64_t sw = software.update(p.key);
    const std::uint64_t hw = hardware.update(p.key);
    ASSERT_EQ(sw, hw) << "write-and-return estimates diverged";
  }

  // Registers match the software tree stages exactly.
  for (std::size_t t = 0; t < config.tree_count; ++t) {
    for (std::size_t l = 1; l <= config.stage_count(); ++l) {
      const auto& cells = hardware.level_registers(t, l).cells;
      const auto stage = software.tree(t).stage(l);
      ASSERT_EQ(cells.size(), stage.size());
      for (std::size_t i = 0; i < cells.size(); ++i) {
        ASSERT_EQ(cells[i], stage[i]) << "tree " << t << " level " << l;
      }
    }
  }

  // Count-queries agree for every flow.
  const flow::GroundTruth truth(trace);
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_EQ(software.query(key), hardware.query(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FcmP4EquivalenceTest,
    ::testing::Combine(::testing::Values(2, 8, 16), ::testing::Values(1, 5)));

TEST(FcmP4Program, FitsHardwareBudget) {
  // The paper's 1.3 MB Tofino configuration passes validation (stage count,
  // sALUs, SRAM placement).
  const core::FcmConfig config =
      core::FcmConfig::for_memory(1'300'000, 2, 8, {8, 16, 32});
  EXPECT_NO_THROW(FcmP4Program{config});
}

TEST(FcmP4Program, RejectsTooManyTrees) {
  core::FcmConfig config = pipeline_config(8, 1);
  config.tree_count = 5;
  EXPECT_THROW(FcmP4Program{config}, std::invalid_argument);
}

TEST(FcmP4Program, ClearResetsRegisters) {
  const core::FcmConfig config = pipeline_config(4, 2);
  FcmP4Program program(config);
  program.update(flow::FlowKey{5});
  program.clear();
  EXPECT_EQ(program.query(flow::FlowKey{5}), 0u);
}

// --- hardware TopK -----------------------------------------------------------

TEST(HardwareTopKFilter, AbsoluteVoteEviction) {
  HardwareTopKFilter filter(1, /*eviction_votes=*/4);
  filter.offer(flow::FlowKey{1});
  for (int i = 0; i < 1000; ++i) filter.offer(flow::FlowKey{1});
  // The incumbent's count is irrelevant: 4 mismatches evict.
  using Outcome = sketch::TopKFilter::Offer::Outcome;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(filter.offer(flow::FlowKey{2}).outcome, Outcome::kPassThrough);
  }
  const auto offer = filter.offer(flow::FlowKey{2});
  EXPECT_EQ(offer.outcome, Outcome::kEvicted);
  EXPECT_EQ(offer.evicted_count, 1001u);
}

TEST(HardwareFcmTopK, NeverUnderestimates) {
  flow::SyntheticTraceConfig trace_config;
  trace_config.packet_count = 100000;
  trace_config.flow_count = 10000;
  const flow::Trace trace = flow::SyntheticTraceGenerator(trace_config).generate();
  const flow::GroundTruth truth(trace);

  HardwareFcmTopK hw(pipeline_config(16, 3), 512);
  for (const flow::Packet& p : trace.packets()) hw.update(p.key);
  for (const auto& [key, size] : truth.flow_sizes()) {
    ASSERT_GE(hw.query(key), size);
  }
}

TEST(HardwareTopKFilter, RejectsBadParameters) {
  EXPECT_THROW(HardwareTopKFilter(0), std::invalid_argument);
  EXPECT_THROW(HardwareTopKFilter(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fcm::pisa
