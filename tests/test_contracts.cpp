// Contract layer tests: documented contract errors for invalid inputs, and
// a check_invariants() sweep over every core type driven by a synthetic
// trace (the CHECKED-build hook exercises the same sweeps from hot paths).
#include "common/contracts.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "controlplane/em.h"
#include "controlplane/virtual_counter.h"
#include "fcm/fcm_sketch.h"
#include "fcm/fcm_topk.h"
#include "flow/synthetic.h"
#include "framework/fcm_framework.h"
#include "pisa/fcm_p4.h"
#include "pisa/hardware_topk.h"
#include "pisa/pipeline.h"
#include "sketch/cm_sketch.h"
#include "sketch/topk_filter.h"

namespace fcm {
namespace {

using common::ContractViolation;

core::FcmConfig small_config(std::uint64_t seed = 0xabc) {
  core::FcmConfig config;
  config.tree_count = 2;
  config.k = 8;
  config.stage_bits = {8, 16, 32};
  config.leaf_count = 8 * 8 * 64;  // 4096 leaves
  config.seed = seed;
  return config;
}

#if FCM_CONTRACT_LEVEL == 1

// --- macro semantics -----------------------------------------------------

TEST(Contracts, ViolationCarriesKindAndLocation) {
  try {
    FCM_REQUIRE(1 == 2, "the message");
    FAIL() << "FCM_REQUIRE did not throw";
  } catch (const ContractViolation& violation) {
    EXPECT_STREQ(violation.kind(), "REQUIRE");
    const std::string what = violation.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
  }
}

TEST(Contracts, ViolationIsAnInvalidArgument) {
  // Pre-existing callers catch std::invalid_argument / std::logic_error.
  EXPECT_THROW(FCM_ASSERT(false, "x"), std::invalid_argument);
  EXPECT_THROW(FCM_ENSURE(false, "x"), std::logic_error);
}

TEST(Contracts, PassingConditionsDoNotEvaluateTheMessage) {
  int evaluations = 0;
  const auto message = [&] {
    ++evaluations;
    return std::string("expensive");
  };
  FCM_REQUIRE(true, message());
  EXPECT_EQ(evaluations, 0);
}

TEST(Contracts, CheckedNarrowPreservesOrThrows) {
  EXPECT_EQ(common::checked_narrow<std::uint32_t>(std::uint64_t{7}), 7u);
  EXPECT_EQ(common::checked_narrow<std::uint8_t>(std::uint64_t{255}), 255u);
  EXPECT_THROW(common::checked_narrow<std::uint8_t>(std::uint64_t{256}),
               ContractViolation);
  EXPECT_THROW(common::checked_narrow<std::uint32_t>(std::int64_t{-1}),
               ContractViolation);
}

// --- documented contract errors ------------------------------------------

TEST(Contracts, InvalidFcmGeometriesFail) {
  core::FcmConfig config = small_config();
  config.tree_count = 0;
  EXPECT_THROW(config.validate(), ContractViolation);

  config = small_config();
  config.k = 1;
  EXPECT_THROW(config.validate(), ContractViolation);

  config = small_config();
  config.stage_bits = {8, 16, 16};  // not strictly increasing
  EXPECT_THROW(config.validate(), ContractViolation);

  config = small_config();
  config.stage_bits = {1, 16, 32};  // below 2 bits
  EXPECT_THROW(config.validate(), ContractViolation);

  config = small_config();
  config.leaf_count = 100;  // not a multiple of k^(L-1) = 64
  EXPECT_THROW(config.validate(), ContractViolation);

  EXPECT_THROW(core::FcmConfig::for_memory(1, 2, 8, {8, 16, 32}),
               ContractViolation);
}

TEST(Contracts, PipelineRegisterAccessOutOfRange) {
  pisa::Pipeline pipeline;
  const auto id = pipeline.add_register_array("leafs", 8, 16);

  // Unknown array id.
  EXPECT_THROW(pipeline.register_array(id + 1), ContractViolation);

  // Out-of-range cell access names the offending array.
  try {
    (void)pipeline.register_array(id).at(16);
    FAIL() << "RegisterArray::at did not throw";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("leafs"), std::string::npos);
  }
}

TEST(Contracts, PipelineAddActionChecksAtInsertionTime) {
  pisa::Pipeline pipeline;
  const auto stage = pipeline.add_stage();
  const auto array = pipeline.add_register_array("r", 8, 16);

  // sALU referencing an unknown array fails when added, not at validate().
  EXPECT_THROW(
      pipeline.add_action(
          stage, pisa::SaluAction{pisa::SaluAction::Kind::kRead, array + 7, 0, 1}),
      ContractViolation);

  // Missing stage.
  EXPECT_THROW(
      pipeline.add_action(
          stage + 1, pisa::SaluAction{pisa::SaluAction::Kind::kRead, array, 0, 1}),
      ContractViolation);

  // PHV field out of range.
  pisa::SaluAction bad_index{pisa::SaluAction::Kind::kRead, array,
                             static_cast<int>(pisa::Phv::kFields), 1};
  EXPECT_THROW(pipeline.add_action(stage, bad_index), ContractViolation);

  // Field-action division by zero.
  EXPECT_THROW(
      pipeline.add_action(
          stage, pisa::FieldAction{pisa::FieldAction::Op::kDivImm, 0, -1, -1, 0, -1}),
      ContractViolation);

  // Bad register geometry names the array.
  EXPECT_THROW(pipeline.add_register_array("bad", 1, 10), ContractViolation);
  EXPECT_THROW(pipeline.add_register_array("bad", 33, 10), ContractViolation);
  EXPECT_THROW(pipeline.add_register_array("bad", 8, 0), ContractViolation);
}

TEST(Contracts, PipelineValidateNamesOffenders) {
  pisa::PipelineLimits limits;
  limits.max_salus_per_stage = 1;
  pisa::Pipeline pipeline(limits);
  const auto stage = pipeline.add_stage();
  const auto a = pipeline.add_register_array("alpha", 8, 4);
  const auto b = pipeline.add_register_array("beta", 8, 4);
  pipeline.add_action(stage, pisa::SaluAction{pisa::SaluAction::Kind::kRead, a, 0, 1});
  pipeline.add_action(stage, pisa::SaluAction{pisa::SaluAction::Kind::kRead, b, 0, 2});
  try {
    pipeline.validate();
    FAIL() << "validate did not throw";
  } catch (const pisa::PipelineError& error) {
    EXPECT_NE(std::string(error.what()).find("stage 0"), std::string::npos);
  }

  // Double access reports the array by name.
  pisa::Pipeline pipeline2;
  const auto s2 = pipeline2.add_stage();
  const auto r = pipeline2.add_register_array("gamma", 8, 4);
  pipeline2.add_action(s2, pisa::SaluAction{pisa::SaluAction::Kind::kRead, r, 0, 1});
  pipeline2.add_action(s2, pisa::SaluAction{pisa::SaluAction::Kind::kRead, r, 0, 2});
  try {
    pipeline2.validate();
    FAIL() << "validate did not throw";
  } catch (const pisa::PipelineError& error) {
    EXPECT_NE(std::string(error.what()).find("gamma"), std::string::npos);
  }
}

TEST(Contracts, EmDegenerateInputsFail) {
  // No arrays.
  EXPECT_THROW(control::EmFsdEstimator({}), ContractViolation);

  // leaf_count == 0 would divide by zero in lambda().
  control::VirtualCounterArray zero_leaves;
  zero_leaves.leaf_count = 0;
  zero_leaves.counters.push_back(control::VirtualCounter{5, 1});
  EXPECT_THROW(control::EmFsdEstimator({zero_leaves}), ContractViolation);

  // A non-empty counter of degree 0 is structurally impossible (§4.1).
  control::VirtualCounterArray degree_zero;
  degree_zero.leaf_count = 8;
  degree_zero.counters.push_back(control::VirtualCounter{5, 0});
  EXPECT_THROW(control::EmFsdEstimator({degree_zero}), ContractViolation);

  // max_iterations == 0 runs no EM step; reject it loudly.
  control::VirtualCounterArray ok;
  ok.leaf_count = 8;
  ok.counters.push_back(control::VirtualCounter{5, 1});
  control::EmConfig config;
  config.max_iterations = 0;
  EXPECT_THROW(control::EmFsdEstimator({ok}, config), ContractViolation);
}

TEST(Contracts, FilterAndBaselineConstructorsFail) {
  EXPECT_THROW(sketch::TopKFilter(0), ContractViolation);
  EXPECT_THROW(sketch::TopKFilter(16, 0), ContractViolation);
  EXPECT_THROW(sketch::CmSketch(0, 100), ContractViolation);
  EXPECT_THROW(sketch::CmSketch(3, 0), ContractViolation);
  EXPECT_THROW(pisa::HardwareTopKFilter(0), ContractViolation);
}

#endif  // FCM_CONTRACT_LEVEL == 1

// --- cardinality saturation (contract-guarded, counted) ------------------

TEST(Contracts, CardinalitySaturationIsCountedNotSilent) {
  core::FcmConfig config = small_config();
  config.leaf_count = 64;
  config.tree_count = 1;
  core::FcmSketch sketch(config);
  EXPECT_EQ(sketch.cardinality_saturation_count(), 0u);

  // Fill every leaf so linear counting runs out of range.
  for (std::uint32_t i = 0; i < 5000; ++i) sketch.update(flow::FlowKey{i + 1});
  const double saturated = sketch.estimate_cardinality();
  EXPECT_TRUE(std::isfinite(saturated));
  EXPECT_GT(saturated, 64.0);
  EXPECT_EQ(sketch.cardinality_saturation_count(), 1u);
  (void)sketch.estimate_cardinality();
  EXPECT_EQ(sketch.cardinality_saturation_count(), 2u);

  sketch.clear();
  EXPECT_EQ(sketch.cardinality_saturation_count(), 0u);
  EXPECT_NEAR(sketch.estimate_cardinality(), 0.0, 1e-9);
  EXPECT_EQ(sketch.cardinality_saturation_count(), 0u);  // guard did not fire
}

// --- check_invariants() sweep over every core type -----------------------

flow::Trace sweep_trace(std::uint64_t seed) {
  flow::SyntheticTraceConfig config;
  config.packet_count = 60000;
  config.flow_count = 6000;
  config.seed = seed;
  return flow::SyntheticTraceGenerator(config).generate();
}

TEST(InvariantSweep, FcmSketchAndConservativeUpdate) {
  const flow::Trace trace = sweep_trace(11);
  core::FcmSketch sketch(small_config(11));
  core::FcmSketch cu(small_config(11));
  for (const flow::Packet& p : trace.packets()) {
    sketch.update(p.key);
    cu.update_conservative(p.key);
  }
  sketch.check_invariants();
  cu.check_invariants();
}

TEST(InvariantSweep, FcmTreeOverflowConsistencyUnderBulkAdds) {
  core::FcmConfig config = small_config(5);
  config.tree_count = 1;
  config.leaf_count = 64;  // force heavy overflow into stages 2 and 3
  core::FcmSketch sketch(config);
  for (std::uint32_t i = 0; i < 512; ++i) {
    sketch.add(flow::FlowKey{i + 1}, 1 + (i % 700));
  }
  sketch.check_invariants();
  for (std::size_t t = 0; t < sketch.tree_count(); ++t) {
    sketch.tree(t).check_invariants();
  }
}

TEST(InvariantSweep, TopKVariants) {
  const flow::Trace trace = sweep_trace(12);

  core::FcmTopK::Config config;
  config.fcm = small_config(12);
  config.topk_entries = 512;
  core::FcmTopK topk(config);

  sketch::TopKFilter filter(256);
  pisa::HardwareFcmTopK hw(small_config(12), 512);

  for (const flow::Packet& p : trace.packets()) {
    topk.update(p.key);
    (void)filter.offer(p.key);
    hw.update(p.key);
  }
  topk.check_invariants();
  filter.check_invariants();
  hw.check_invariants();
}

TEST(InvariantSweep, PipelineProgram) {
  const flow::Trace trace = sweep_trace(13);
  core::FcmConfig config = small_config(13);
  config.leaf_count = 4096;
  pisa::FcmP4Program program(config);
  for (const flow::Packet& p : trace.packets()) program.update(p.key);
  program.check_invariants();
  program.pipeline().check_invariants();
}

TEST(InvariantSweep, VirtualCountersAndEm) {
  const flow::Trace trace = sweep_trace(14);
  core::FcmSketch sketch(small_config(14));
  for (const flow::Packet& p : trace.packets()) sketch.update(p.key);

  const auto arrays = control::convert_sketch(sketch);
  std::uint64_t total = 0;
  for (const auto& array : arrays) {
    array.check_invariants();
    total += array.total_value();
  }
  // Conversion round-trip: mass preserved per tree (§4.1).
  for (std::size_t t = 0; t < sketch.tree_count(); ++t) {
    EXPECT_EQ(arrays[t].total_value(), sketch.tree(t).total_count());
  }
  EXPECT_GT(total, 0u);

  control::EmConfig em_config;
  em_config.max_iterations = 2;
  control::EmFsdEstimator em(arrays, em_config);
  em.check_invariants();  // initialization preserves mass
  em.run();
  em.check_invariants();  // every step preserves mass
}

TEST(InvariantSweep, BaselinesAndFramework) {
  const flow::Trace trace = sweep_trace(15);

  sketch::CmSketch cm(3, 4096);
  sketch::CuSketch cu(3, 4096);

  framework::FcmFramework::Options options;
  options.fcm = small_config(15);
  options.topk_entries = 512;
  framework::FcmFramework fw(options);

  for (const flow::Packet& p : trace.packets()) {
    cm.update(p.key);
    cu.update(p.key);
    fw.process(p.key);
  }
  cm.check_invariants();
  cu.check_invariants();
  fw.check_invariants();
}

}  // namespace
}  // namespace fcm
