#include "sketch/spread_sketch.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "metrics/metrics.h"

namespace fcm::sketch {
namespace {

TEST(MultiresolutionBitmap, RejectsBadGeometry) {
  EXPECT_THROW(MultiresolutionBitmap(0, 64), std::invalid_argument);
  EXPECT_THROW(MultiresolutionBitmap(4, 0), std::invalid_argument);
}

TEST(MultiresolutionBitmap, EmptyEstimatesNearZero) {
  const MultiresolutionBitmap mrb(8, 64);
  EXPECT_LT(mrb.estimate(), 1.0);
}

TEST(MultiresolutionBitmap, DuplicatesDoNotInflate) {
  MultiresolutionBitmap mrb(8, 64);
  for (int i = 0; i < 1000; ++i) mrb.add(common::mix64(42));
  EXPECT_NEAR(mrb.estimate(), 1.0, 1.1);
}

class MrbAccuracyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MrbAccuracyTest, EstimateWithinThirtyPercent) {
  const std::size_t n = GetParam();
  MultiresolutionBitmap mrb(16, 128);
  for (std::size_t i = 1; i <= n; ++i) mrb.add(common::mix64(i));
  EXPECT_NEAR(mrb.estimate(), static_cast<double>(n),
              std::max(8.0, 0.30 * static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MrbAccuracyTest,
                         ::testing::Values(5, 50, 500, 5000, 50000));

TEST(MultiresolutionBitmap, MergeIsUnion) {
  MultiresolutionBitmap a(8, 64);
  MultiresolutionBitmap b(8, 64);
  for (std::size_t i = 1; i <= 20; ++i) a.add(common::mix64(i));
  for (std::size_t i = 15; i <= 40; ++i) b.add(common::mix64(i));
  a.merge(b);
  EXPECT_NEAR(a.estimate(), 40.0, 14.0);
  MultiresolutionBitmap wrong(4, 64);
  EXPECT_THROW(a.merge(wrong), std::invalid_argument);
}

TEST(SpreadSketch, RejectsBadGeometry) {
  SpreadSketch::Config config;
  config.rows = 0;
  EXPECT_THROW(SpreadSketch{config}, std::invalid_argument);
}

TEST(SpreadSketch, SingleSourceSpread) {
  SpreadSketch sketch(SpreadSketch::Config{});
  const flow::FlowKey source{0x0a000001};
  for (std::uint32_t d = 1; d <= 300; ++d) {
    sketch.update(source, flow::FlowKey{d});
    sketch.update(source, flow::FlowKey{d});  // re-contact: no inflation
  }
  EXPECT_NEAR(sketch.estimate_spread(source), 300.0, 90.0);
}

TEST(SpreadSketch, DetectsSuperspreadersAmongNoise) {
  SpreadSketch::Config config;
  config.buckets_per_row = 2048;
  SpreadSketch sketch(config);
  common::Xoshiro256 rng(7);

  // 10 scanners hitting 2000 destinations each; 5000 normal sources with
  // <= 5 destinations.
  std::vector<flow::FlowKey> scanners;
  for (std::uint32_t s = 1; s <= 10; ++s) {
    const flow::FlowKey scanner{0xbad00000u + s};
    scanners.push_back(scanner);
    for (std::uint32_t d = 0; d < 2000; ++d) {
      sketch.update(scanner, flow::FlowKey{static_cast<std::uint32_t>(rng.next())});
    }
  }
  for (std::uint32_t s = 1; s <= 5000; ++s) {
    const flow::FlowKey source{0x0a000000u + s};
    const std::uint64_t fanout = 1 + rng.next_below(5);
    for (std::uint64_t d = 0; d < fanout; ++d) {
      sketch.update(source, flow::FlowKey{static_cast<std::uint32_t>(rng.next())});
    }
  }

  const auto reported = sketch.superspreaders(500.0);
  std::vector<flow::FlowKey> reported_keys;
  for (const auto& candidate : reported) reported_keys.push_back(candidate.source);
  const auto scores = metrics::classification_scores(reported_keys, scanners);
  EXPECT_GE(scores.recall, 0.9) << "scanners must be invertible from buckets";
  EXPECT_GE(scores.precision, 0.7);
  // Reported spreads are in the right ballpark.
  for (const auto& candidate : reported) {
    if (candidate.source.value >= 0xbad00000u) {
      EXPECT_NEAR(candidate.spread, 2000.0, 900.0);
    }
  }
}

TEST(SpreadSketch, ClearResets) {
  SpreadSketch sketch(SpreadSketch::Config{});
  for (std::uint32_t d = 1; d <= 100; ++d) {
    sketch.update(flow::FlowKey{1}, flow::FlowKey{d});
  }
  sketch.clear();
  EXPECT_LT(sketch.estimate_spread(flow::FlowKey{1}), 2.0);
  EXPECT_TRUE(sketch.superspreaders(1.0).empty());
}

TEST(SpreadSketch, MemoryAccounting) {
  SpreadSketch::Config config;
  config.rows = 4;
  config.buckets_per_row = 100;
  config.mrb_levels = 8;
  config.mrb_bits = 64;
  EXPECT_EQ(SpreadSketch(config).memory_bytes(), 4u * 100u * (64u + 5u));
}

}  // namespace
}  // namespace fcm::sketch
